package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func testPoints() ([]geom.Point, []int) {
	pts := []geom.Point{
		{ID: 0, X: 0, Y: 0},   // cluster 0, bottom-left
		{ID: 1, X: 10, Y: 10}, // cluster 1, top-right
		{ID: 2, X: 5, Y: 5},   // noise, center
	}
	return pts, []int{0, 1, -1}
}

func TestWritePPMFormat(t *testing.T) {
	pts, labels := testPoints()
	var buf bytes.Buffer
	if err := WritePPM(&buf, pts, labels, Options{Width: 40, Height: 30, ShowNoise: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n40 30\n255\n")) {
		t.Fatalf("bad PPM header: %q", data[:16])
	}
	header := len("P6\n40 30\n255\n")
	if len(data) != header+40*30*3 {
		t.Fatalf("PPM body = %d bytes, want %d", len(data)-header, 40*30*3)
	}
	// Deterministic output.
	var again bytes.Buffer
	if err := WritePPM(&again, pts, labels, Options{Width: 40, Height: 30, ShowNoise: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("rendering not deterministic")
	}
}

func TestPPMPixelPlacement(t *testing.T) {
	pts, labels := testPoints()
	var buf bytes.Buffer
	opt := Options{
		Width: 11, Height: 11, ShowNoise: true,
		Bounds: geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
	}
	if err := WritePPM(&buf, pts, labels, opt); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	header := bytes.Count(data[:len("P6\n11 11\n255\n")], nil) - 1
	pixel := func(x, y int) [3]byte {
		off := header + (y*11+x)*3
		return [3]byte{data[off], data[off+1], data[off+2]}
	}
	// Point (0,0) renders at bottom-left (y flipped).
	if pixel(0, 10) == background {
		t.Error("cluster 0 pixel missing at bottom-left")
	}
	if pixel(10, 0) == background {
		t.Error("cluster 1 pixel missing at top-right")
	}
	if pixel(5, 5) != noiseColor {
		t.Errorf("noise pixel = %v, want gray", pixel(5, 5))
	}
	if pixel(2, 2) != background {
		t.Error("empty area must stay background")
	}
}

func TestASCII(t *testing.T) {
	pts, labels := testPoints()
	art, err := ASCII(pts, labels, 11, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11", len(lines))
	}
	joined := strings.Join(lines, "")
	if !strings.Contains(joined, "a") || !strings.Contains(joined, "b") {
		t.Errorf("expected cluster glyphs a and b:\n%s", art)
	}
	if !strings.Contains(joined, ",") {
		t.Errorf("expected noise glyph:\n%s", art)
	}
	// Without noise, the ',' disappears.
	art2, err := ASCII(pts, labels, 11, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(art2, ",") {
		t.Error("noise rendered despite showNoise=false")
	}
}

func TestMismatchedInput(t *testing.T) {
	if err := WritePPM(&bytes.Buffer{}, []geom.Point{{}}, nil, Options{}); err == nil {
		t.Error("mismatched labels must fail")
	}
	if _, err := ASCII([]geom.Point{{}}, nil, 10, 10, false); err == nil {
		t.Error("mismatched labels must fail")
	}
}

func TestEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePPM(&buf, nil, nil, Options{Width: 8, Height: 8}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty input must still produce a valid image")
	}
}

func TestClustersOverwriteNoise(t *testing.T) {
	// A cluster point and a noise point land on the same pixel: the
	// cluster must win regardless of order.
	pts := []geom.Point{{ID: 0, X: 1, Y: 1}, {ID: 1, X: 1, Y: 1}}
	for _, labels := range [][]int{{-1, 0}, {0, -1}} {
		art, err := ASCII(pts, labels, 3, 3, true)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(art, ",") || !strings.Contains(art, "a") {
			t.Errorf("cluster must overwrite noise, got:\n%s", art)
		}
	}
}
