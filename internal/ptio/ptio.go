// Package ptio implements Mr. Scan's point file formats.
//
// The paper's pipeline starts "with a single input file on a parallel file
// system and writes a file of the points included in a cluster and their
// cluster IDs as output" (§3). Input points are "contained in a single
// binary or text file", each with "a unique ID number, coordinates, and an
// optional weight".
//
// Three on-disk forms are provided:
//
//   - MRSC binary dataset files: a fixed header followed by point records.
//   - MRSL binary labeled files: the sweep phase's output, point records
//     extended with a cluster ID.
//   - Plain text: "id x y [weight]" lines.
//
// Partition files written by the distributed partitioner are headerless
// concatenations of point records at offsets recorded in a JSON metadata
// document (§3.1.3: "the root generates a metadata file to specify the
// offset from which each partition starts in the output file").
package ptio

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Magic values identifying the binary formats.
var (
	magicDataset = [4]byte{'M', 'R', 'S', 'C'}
	magicLabeled = [4]byte{'M', 'R', 'S', 'L'}
)

// Version is the current binary format version.
const Version = 1

// DatasetHeaderSize is the byte size of the MRSC (and MRSL) file header:
// magic, version, flags, record count.
const DatasetHeaderSize = 16

// Flag bits in the dataset header.
const (
	// FlagWeight indicates records carry the optional weight field.
	FlagWeight = 1 << 0

	// knownFlags masks every flag bit this version understands; anything
	// else in the flags field marks a file from a newer writer.
	knownFlags = FlagWeight
)

// DatasetHeader is the decoded MRSC file header.
type DatasetHeader struct {
	// HasWeight reports whether records carry the weight field — the
	// authoritative record format; callers must not trust out-of-band
	// configuration over this bit.
	HasWeight bool
	// Count is the record count the writer declared.
	Count int64
}

// ParseDatasetHeader validates and decodes a 16-byte MRSC header: magic,
// version, and flag bits are all checked so a torn, foreign, or
// newer-format file fails loudly instead of being misparsed into garbage
// coordinates.
func ParseDatasetHeader(hdr []byte) (DatasetHeader, error) {
	if len(hdr) < DatasetHeaderSize {
		return DatasetHeader{}, fmt.Errorf("ptio: dataset header is %d bytes, need %d", len(hdr), DatasetHeaderSize)
	}
	if [4]byte(hdr[:4]) != magicDataset {
		return DatasetHeader{}, fmt.Errorf("ptio: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != Version {
		return DatasetHeader{}, fmt.Errorf("ptio: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:])
	if unknown := flags &^ knownFlags; unknown != 0 {
		return DatasetHeader{}, fmt.Errorf("ptio: unknown header flags %#x", unknown)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	if count > math.MaxInt64 {
		return DatasetHeader{}, fmt.Errorf("ptio: header count %d overflows int64", count)
	}
	return DatasetHeader{
		HasWeight: flags&FlagWeight != 0,
		Count:     int64(count),
	}, nil
}

// RecordSize returns the byte size of one point record.
func RecordSize(hasWeight bool) int {
	if hasWeight {
		return 8 + 8 + 8 + 8 // id, x, y, weight
	}
	return 8 + 8 + 8
}

// LabeledRecordSize is the byte size of one labeled output record
// (id, x, y, cluster).
const LabeledRecordSize = 8 + 8 + 8 + 8

// AppendRecord appends p's record to buf and returns the extended slice.
func AppendRecord(buf []byte, p geom.Point, hasWeight bool) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, p.ID)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
	if hasWeight {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Weight))
	}
	return buf
}

// EncodeRecords encodes pts as headerless records (partition file form).
func EncodeRecords(pts []geom.Point, hasWeight bool) []byte {
	buf := make([]byte, 0, len(pts)*RecordSize(hasWeight))
	for _, p := range pts {
		buf = AppendRecord(buf, p, hasWeight)
	}
	return buf
}

// DecodeRecords decodes headerless records. The byte length must be an
// exact multiple of the record size.
func DecodeRecords(data []byte, hasWeight bool) ([]geom.Point, error) {
	rs := RecordSize(hasWeight)
	if len(data)%rs != 0 {
		return nil, fmt.Errorf("ptio: %d bytes is not a multiple of record size %d", len(data), rs)
	}
	pts := make([]geom.Point, 0, len(data)/rs)
	for off := 0; off < len(data); off += rs {
		p := geom.Point{
			ID: binary.LittleEndian.Uint64(data[off:]),
			X:  math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
			Y:  math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
		}
		if hasWeight {
			p.Weight = math.Float64frombits(binary.LittleEndian.Uint64(data[off+24:]))
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// WriteDataset writes a complete MRSC file (header + records) to w.
func WriteDataset(w io.Writer, pts []geom.Point, hasWeight bool) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	copy(hdr[:4], magicDataset[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	var flags uint16
	if hasWeight {
		flags |= FlagWeight
	}
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(pts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("ptio: writing header: %w", err)
	}
	var rec []byte
	for _, p := range pts {
		rec = AppendRecord(rec[:0], p, hasWeight)
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("ptio: writing record %d: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadDataset reads a complete MRSC file from r.
func ReadDataset(r io.Reader) ([]geom.Point, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [DatasetHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ptio: reading header: %w", err)
	}
	dh, err := ParseDatasetHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	hasWeight := dh.HasWeight
	count := uint64(dh.Count)
	rs := RecordSize(hasWeight)
	// The header count is untrusted input: read in bounded batches so a
	// corrupt count cannot force a giant allocation — memory grows only
	// with bytes actually present.
	const batch = 1 << 16
	pts := make([]geom.Point, 0, min64(count, batch))
	buf := make([]byte, batch*rs)
	for read := uint64(0); read < count; {
		n := min64(count-read, batch)
		chunk := buf[:n*uint64(rs)]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("ptio: reading records %d..%d of %d: %w", read, read+n, count, err)
		}
		decoded, err := DecodeRecords(chunk, hasWeight)
		if err != nil {
			return nil, err
		}
		pts = append(pts, decoded...)
		read += n
	}
	return pts, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// LabeledPoint is one record of the sweep phase's output.
type LabeledPoint struct {
	Point   geom.Point
	Cluster int64
}

// AppendLabeled appends one labeled record to buf.
func AppendLabeled(buf []byte, lp LabeledPoint) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, lp.Point.ID)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lp.Point.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lp.Point.Y))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lp.Cluster))
	return buf
}

// DecodeLabeled decodes headerless labeled records.
func DecodeLabeled(data []byte) ([]LabeledPoint, error) {
	if len(data)%LabeledRecordSize != 0 {
		return nil, fmt.Errorf("ptio: %d bytes is not a multiple of labeled record size %d",
			len(data), LabeledRecordSize)
	}
	out := make([]LabeledPoint, 0, len(data)/LabeledRecordSize)
	for off := 0; off < len(data); off += LabeledRecordSize {
		out = append(out, LabeledPoint{
			Point: geom.Point{
				ID: binary.LittleEndian.Uint64(data[off:]),
				X:  math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:])),
				Y:  math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:])),
			},
			Cluster: int64(binary.LittleEndian.Uint64(data[off+24:])),
		})
	}
	return out, nil
}

// LabeledHeader returns the 16-byte MRSL file header for count records.
// The sweep phase writes it at offset 0 while leaves write records at
// their assigned offsets in parallel.
func LabeledHeader(count int64) []byte {
	hdr := make([]byte, 16)
	copy(hdr[:4], magicLabeled[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(count))
	return hdr
}

// WriteLabeled writes a complete MRSL file (header + records) to w.
func WriteLabeled(w io.Writer, pts []LabeledPoint) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	copy(hdr[:4], magicLabeled[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(pts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("ptio: writing header: %w", err)
	}
	var rec []byte
	for _, lp := range pts {
		rec = AppendLabeled(rec[:0], lp)
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("ptio: writing labeled record %d: %w", lp.Point.ID, err)
		}
	}
	return bw.Flush()
}

// ReadLabeled reads a complete MRSL file from r.
func ReadLabeled(r io.Reader) ([]LabeledPoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ptio: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicLabeled {
		return nil, fmt.Errorf("ptio: bad magic %q", hdr[:4])
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const batch = 1 << 16
	lps := make([]LabeledPoint, 0, min64(count, batch))
	buf := make([]byte, batch*LabeledRecordSize)
	for read := uint64(0); read < count; {
		n := min64(count-read, batch)
		chunk := buf[:n*LabeledRecordSize]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("ptio: reading labeled records %d..%d of %d: %w", read, read+n, count, err)
		}
		decoded, err := DecodeLabeled(chunk)
		if err != nil {
			return nil, err
		}
		lps = append(lps, decoded...)
		read += n
	}
	return lps, nil
}

// WriteText writes points as "id x y [weight]" lines.
func WriteText(w io.Writer, pts []geom.Point, hasWeight bool) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, p := range pts {
		var err error
		if hasWeight {
			_, err = fmt.Fprintf(bw, "%d %g %g %g\n", p.ID, p.X, p.Y, p.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d %g %g\n", p.ID, p.X, p.Y)
		}
		if err != nil {
			return fmt.Errorf("ptio: writing text record %d: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadText parses "id x y [weight]" lines. Blank lines and lines starting
// with '#' are skipped.
func ReadText(r io.Reader) ([]geom.Point, error) {
	var pts []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("ptio: line %d: expected 3 or 4 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ptio: line %d: bad id: %w", lineNo, err)
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("ptio: line %d: bad x: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ptio: line %d: bad y: %w", lineNo, err)
		}
		p := geom.Point{ID: id, X: x, Y: y}
		if len(fields) == 4 {
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("ptio: line %d: bad weight: %w", lineNo, err)
			}
			p.Weight = w
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ptio: scanning: %w", err)
	}
	return pts, nil
}

// PartitionEntry locates one partition inside a partition file: the
// partition's own points followed by its shadow-region points.
type PartitionEntry struct {
	// Offset is the byte offset of the partition's records.
	Offset int64 `json:"offset"`
	// Count is the number of partition (non-shadow) points.
	Count int64 `json:"count"`
	// ShadowOffset and ShadowCount locate the shadow-region records.
	ShadowOffset int64 `json:"shadowOffset"`
	ShadowCount  int64 `json:"shadowCount"`
}

// SegmentRun locates one leaf's contiguous contribution to a partition
// region inside a segment file — one entry of the aggregated writer's
// log-structured index. A leaf's runs are laid out back to back in
// partition order (owned before shadow), so the leaf's whole contribution
// is a single sequential write.
type SegmentRun struct {
	// Leaf is the partitioner leaf that wrote the run.
	Leaf int `json:"leaf"`
	// Partition is the destination partition index.
	Partition int `json:"partition"`
	// Shadow marks a shadow-region run (owned otherwise).
	Shadow bool `json:"shadow,omitempty"`
	// Offset is the byte offset of the run inside the segment file.
	Offset int64 `json:"offset"`
	// Count is the number of point records in the run.
	Count int64 `json:"count"`
}

// Segment is one sharded append-log file of the aggregated partition
// writer, with the index of runs it holds (offset-ascending).
type Segment struct {
	File string       `json:"file"`
	Runs []SegmentRun `json:"runs"`
}

// PartitionMeta is the metadata document the partitioner root generates.
//
// Two layouts exist. In the legacy layout each PartitionEntry's offsets
// point into a single partition file holding the regions contiguously. In
// the aggregated (log-structured) layout Segments is non-empty: partition
// data lives as per-leaf sequential runs in the segment files and the
// entries' Offset/ShadowOffset are -1 (Count/ShadowCount stay valid).
type PartitionMeta struct {
	Eps        float64          `json:"eps"`
	HasWeight  bool             `json:"hasWeight"`
	Partitions []PartitionEntry `json:"partitions"`
	// Segments, when non-empty, is the aggregated writer's segment index.
	Segments []Segment `json:"segments,omitempty"`
}

// Marshal encodes the metadata as JSON.
func (m *PartitionMeta) Marshal() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// UnmarshalPartitionMeta decodes a metadata document.
func UnmarshalPartitionMeta(data []byte) (*PartitionMeta, error) {
	var m PartitionMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ptio: parsing partition metadata: %w", err)
	}
	return &m, nil
}
