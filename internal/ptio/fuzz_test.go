package ptio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/geom"
)

// The binary and text decoders consume external files; they must never
// panic on arbitrary input, and anything they accept must round-trip.

func FuzzReadDataset(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteDataset(&seed, []geom.Point{{ID: 1, X: 2, Y: 3}}, false); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var weighted bytes.Buffer
	if err := WriteDataset(&weighted, []geom.Point{{ID: 1, X: 2, Y: 3, Weight: 4}}, true); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())
	f.Add([]byte("MRSC garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive a round trip.
		var out bytes.Buffer
		if err := WriteDataset(&out, pts, false); err != nil {
			t.Fatalf("re-encoding accepted input failed: %v", err)
		}
		again, err := ReadDataset(&out)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(again))
		}
	})
}

// rawDatasetHeader assembles a 16-byte MRSC header with arbitrary
// version/flags/count, so seeds can sit just outside the valid space.
func rawDatasetHeader(version, flags uint16, count uint64) []byte {
	hdr := make([]byte, DatasetHeaderSize)
	copy(hdr, magicDataset[:])
	binary.LittleEndian.PutUint16(hdr[4:], version)
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], count)
	return hdr
}

// FuzzParseDatasetHeader throws torn, bit-flipped, and foreign headers
// at the MRSC header parser directly. It must never panic, and any
// header it accepts must round-trip: re-encoding the decoded header
// reproduces the accepted bytes exactly, so no two distinct wire
// headers collapse into the same meaning and nothing invalid — unknown
// flags, a foreign version, an overflowing count — sneaks through.
func FuzzParseDatasetHeader(f *testing.F) {
	f.Add(rawDatasetHeader(Version, 0, 0))
	f.Add(rawDatasetHeader(Version, FlagWeight, 1<<40))
	f.Add(rawDatasetHeader(Version, 0, 1<<63))      // count overflows int64
	f.Add(rawDatasetHeader(Version, 0xfffe, 42))    // unknown flag bits
	f.Add(rawDatasetHeader(Version+1, 0, 7))        // newer writer
	f.Add(rawDatasetHeader(Version, FlagWeight, 5)[:7]) // torn mid-header
	flipped := rawDatasetHeader(Version, 0, 99)
	flipped[0] ^= 0x40 // single-bit magic flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseDatasetHeader(data)
		if err != nil {
			return
		}
		if h.Count < 0 {
			t.Fatalf("accepted header decoded to negative count %d", h.Count)
		}
		var flags uint16
		if h.HasWeight {
			flags = FlagWeight
		}
		want := rawDatasetHeader(Version, flags, uint64(h.Count))
		if !bytes.Equal(data[:DatasetHeaderSize], want) {
			t.Fatalf("accepted header % x decodes to %+v, which re-encodes to % x",
				data[:DatasetHeaderSize], h, want)
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("1 2.5 3.5\n")
	f.Add("# comment\n\n2 -1 -2 7\n")
	f.Add("not points at all")
	f.Add("1 2\n")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, pts, true); err != nil {
			t.Fatalf("re-encoding accepted text failed: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(again))
		}
	})
}

func FuzzDecodeLabeled(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendLabeled(nil, LabeledPoint{Point: geom.Point{ID: 9, X: 1, Y: 2}, Cluster: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		lps, err := DecodeLabeled(data)
		if err != nil {
			return
		}
		var buf []byte
		for _, lp := range lps {
			buf = AppendLabeled(buf, lp)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("accepted labeled records do not round-trip")
		}
	})
}

func FuzzUnmarshalPartitionMeta(f *testing.F) {
	m := &PartitionMeta{Eps: 0.1, Partitions: []PartitionEntry{{Count: 3}}}
	seed, _ := m.Marshal()
	f.Add(seed)
	f.Add([]byte("{"))
	f.Add([]byte(`{"eps": "not a number"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, err := UnmarshalPartitionMeta(data)
		if err != nil {
			return
		}
		if _, err := meta.Marshal(); err != nil {
			t.Fatalf("re-marshaling accepted metadata failed: %v", err)
		}
	})
}
