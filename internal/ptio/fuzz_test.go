package ptio

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// The binary and text decoders consume external files; they must never
// panic on arbitrary input, and anything they accept must round-trip.

func FuzzReadDataset(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteDataset(&seed, []geom.Point{{ID: 1, X: 2, Y: 3}}, false); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var weighted bytes.Buffer
	if err := WriteDataset(&weighted, []geom.Point{{ID: 1, X: 2, Y: 3, Weight: 4}}, true); err != nil {
		f.Fatal(err)
	}
	f.Add(weighted.Bytes())
	f.Add([]byte("MRSC garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must survive a round trip.
		var out bytes.Buffer
		if err := WriteDataset(&out, pts, false); err != nil {
			t.Fatalf("re-encoding accepted input failed: %v", err)
		}
		again, err := ReadDataset(&out)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(again))
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("1 2.5 3.5\n")
	f.Add("# comment\n\n2 -1 -2 7\n")
	f.Add("not points at all")
	f.Add("1 2\n")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, pts, true); err != nil {
			t.Fatalf("re-encoding accepted text failed: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(again))
		}
	})
}

func FuzzDecodeLabeled(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendLabeled(nil, LabeledPoint{Point: geom.Point{ID: 9, X: 1, Y: 2}, Cluster: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		lps, err := DecodeLabeled(data)
		if err != nil {
			return
		}
		var buf []byte
		for _, lp := range lps {
			buf = AppendLabeled(buf, lp)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("accepted labeled records do not round-trip")
		}
	})
}

func FuzzUnmarshalPartitionMeta(f *testing.F) {
	m := &PartitionMeta{Eps: 0.1, Partitions: []PartitionEntry{{Count: 3}}}
	seed, _ := m.Marshal()
	f.Add(seed)
	f.Add([]byte("{"))
	f.Add([]byte(`{"eps": "not a number"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, err := UnmarshalPartitionMeta(data)
		if err != nil {
			return
		}
		if _, err := meta.Marshal(); err != nil {
			t.Fatalf("re-marshaling accepted metadata failed: %v", err)
		}
	})
}
