package ptio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func samplePoints() []geom.Point {
	return []geom.Point{
		{ID: 0, X: 1.5, Y: -2.25, Weight: 1},
		{ID: 42, X: -180, Y: 90, Weight: 3.5},
		{ID: 1 << 40, X: 0.000125, Y: 1e-9, Weight: 0},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, hasWeight := range []bool{false, true} {
		pts := samplePoints()
		data := EncodeRecords(pts, hasWeight)
		if len(data) != len(pts)*RecordSize(hasWeight) {
			t.Fatalf("encoded %d bytes, want %d", len(data), len(pts)*RecordSize(hasWeight))
		}
		got, err := DecodeRecords(data, hasWeight)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pts {
			want := pts[i]
			if !hasWeight {
				want.Weight = 0
			}
			if got[i] != want {
				t.Errorf("hasWeight=%v: record %d = %+v, want %+v", hasWeight, i, got[i], want)
			}
		}
	}
}

func TestDecodeRecordsBadLength(t *testing.T) {
	if _, err := DecodeRecords(make([]byte, 25), false); err == nil {
		t.Error("misaligned record data must be rejected")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	for _, hasWeight := range []bool{false, true} {
		var buf bytes.Buffer
		pts := samplePoints()
		if err := WriteDataset(&buf, pts, hasWeight); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDataset(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("read %d points, want %d", len(got), len(pts))
		}
		for i := range pts {
			want := pts[i]
			if !hasWeight {
				want.Weight = 0
			}
			if got[i] != want {
				t.Errorf("point %d = %+v, want %+v", i, got[i], want)
			}
		}
	}
}

func TestDatasetEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, nil, false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d points from empty dataset", len(got))
	}
}

func TestReadDatasetBadMagic(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("NOTMRSCDATA12345")); err == nil {
		t.Error("bad magic must be rejected")
	}
}

func TestReadDatasetTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, samplePoints(), false); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadDataset(bytes.NewReader(data)); err == nil {
		t.Error("truncated dataset must be rejected")
	}
}

func TestLabeledRoundTrip(t *testing.T) {
	lps := []LabeledPoint{
		{Point: geom.Point{ID: 1, X: 2, Y: 3}, Cluster: 0},
		{Point: geom.Point{ID: 2, X: -2, Y: -3}, Cluster: 99},
		{Point: geom.Point{ID: 3, X: 0, Y: 0}, Cluster: -1}, // noise
	}
	var buf bytes.Buffer
	if err := WriteLabeled(&buf, lps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabeled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lps) {
		t.Fatalf("read %d labeled points, want %d", len(got), len(lps))
	}
	for i := range lps {
		want := lps[i]
		want.Point.Weight = 0 // labeled records do not carry weight
		if got[i] != want {
			t.Errorf("labeled %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestLabeledHeaderMatchesWriter(t *testing.T) {
	// The sweep phase writes the header with LabeledHeader while leaves
	// write records at offsets; the result must parse exactly like a
	// WriteLabeled file.
	lps := []LabeledPoint{
		{Point: geom.Point{ID: 1, X: 2, Y: 3}, Cluster: 0},
		{Point: geom.Point{ID: 2, X: 4, Y: 5}, Cluster: 1},
	}
	var manual bytes.Buffer
	manual.Write(LabeledHeader(int64(len(lps))))
	for _, lp := range lps {
		manual.Write(AppendLabeled(nil, lp))
	}
	got, err := ReadLabeled(&manual)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Point.ID != 1 || got[1].Cluster != 1 {
		t.Errorf("parsed %+v", got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, hasWeight := range []bool{false, true} {
		var buf bytes.Buffer
		pts := samplePoints()
		if err := WriteText(&buf, pts, hasWeight); err != nil {
			t.Fatal(err)
		}
		got, err := ReadText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pts {
			want := pts[i]
			if !hasWeight {
				want.Weight = 0
			}
			if got[i] != want {
				t.Errorf("hasWeight=%v: text point %d = %+v, want %+v", hasWeight, i, got[i], want)
			}
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 2.5 3.5\n  \n# more\n2 -1 -2 7\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d points, want 2", len(got))
	}
	if got[1].Weight != 7 {
		t.Errorf("weight = %v, want 7", got[1].Weight)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"1 2\n",       // too few fields
		"1 2 3 4 5\n", // too many fields
		"x 2 3\n",     // bad id
		"1 x 3\n",     // bad x
		"1 2 x\n",     // bad y
		"1 2 3 x\n",   // bad weight
		"-1 2 3\n",    // negative id
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q must be rejected", in)
		}
	}
}

func TestPartitionMetaRoundTrip(t *testing.T) {
	m := &PartitionMeta{
		Eps:       0.1,
		HasWeight: true,
		Partitions: []PartitionEntry{
			{Offset: 0, Count: 10, ShadowOffset: 240, ShadowCount: 3},
			{Offset: 312, Count: 20, ShadowOffset: 792, ShadowCount: 0},
		},
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPartitionMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Eps != m.Eps || !got.HasWeight || len(got.Partitions) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if got.Partitions[1] != m.Partitions[1] {
		t.Errorf("partition entry = %+v, want %+v", got.Partitions[1], m.Partitions[1])
	}
	if _, err := UnmarshalPartitionMeta([]byte("{bad")); err == nil {
		t.Error("bad JSON must be rejected")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ids []uint64, coords []float64) bool {
		n := len(ids)
		if len(coords)/2 < n {
			n = len(coords) / 2
		}
		pts := make([]geom.Point, 0, n)
		for i := 0; i < n; i++ {
			x, y := coords[2*i], coords[2*i+1]
			if x != x || y != y { // skip NaN: NaN != NaN breaks equality checks
				continue
			}
			pts = append(pts, geom.Point{ID: ids[i], X: x, Y: y})
		}
		data := EncodeRecords(pts, false)
		got, err := DecodeRecords(data, false)
		if err != nil || len(got) != len(pts) {
			return false
		}
		for i := range pts {
			if got[i] != pts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDatasetHeaderValid(t *testing.T) {
	for _, hasWeight := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteDataset(&buf, samplePoints(), hasWeight); err != nil {
			t.Fatal(err)
		}
		dh, err := ParseDatasetHeader(buf.Bytes()[:DatasetHeaderSize])
		if err != nil {
			t.Fatalf("hasWeight=%v: %v", hasWeight, err)
		}
		if dh.HasWeight != hasWeight {
			t.Errorf("HasWeight = %v, want %v", dh.HasWeight, hasWeight)
		}
		if dh.Count != int64(len(samplePoints())) {
			t.Errorf("Count = %d, want %d", dh.Count, len(samplePoints()))
		}
	}
}

func TestParseDatasetHeaderRejects(t *testing.T) {
	var good bytes.Buffer
	if err := WriteDataset(&good, samplePoints(), false); err != nil {
		t.Fatal(err)
	}
	hdr := func() []byte {
		return append([]byte(nil), good.Bytes()[:DatasetHeaderSize]...)
	}
	cases := []struct {
		name string
		hdr  []byte
		want string
	}{
		{"empty", nil, "need 16"},
		{"one byte", hdr()[:1], "need 16"},
		{"fifteen bytes", hdr()[:15], "need 16"},
		{"bad magic", append([]byte("JUNK"), hdr()[4:]...), "bad magic"},
		{"future version", func() []byte {
			h := hdr()
			h[4], h[5] = 0xFF, 0xFF
			return h
		}(), "unsupported version"},
		{"unknown flags", func() []byte {
			h := hdr()
			h[6] |= 0x80
			return h
		}(), "unknown header flags"},
		{"count overflow", func() []byte {
			h := hdr()
			for i := 8; i < 16; i++ {
				h[i] = 0xFF
			}
			return h
		}(), "overflows"},
	}
	for _, c := range cases {
		_, err := ParseDatasetHeader(c.hdr)
		if err == nil {
			t.Errorf("%s: accepted, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}
