// Equivalence checking between the incremental labeling and batch
// DBSCAN. Exact label equality is the wrong target: DBSCAN border
// points within Eps of cores in two different clusters are legitimately
// assigned to either (the batch implementation's assignment depends on
// seed-expansion order). The right relation is cluster isomorphism on
// core points, identical noise, and a valid core witness for every
// border assignment.
package stream

import (
	"fmt"

	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Isomorphic reports whether two labelings name the same partition:
// a bijection between label sets maps a onto b, with Noise mapping to
// Noise exactly.
func Isomorphic(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ab := make(map[int]int)
	ba := make(map[int]int)
	for i := range a {
		if (a[i] == Noise) != (b[i] == Noise) {
			return false
		}
		if a[i] == Noise {
			continue
		}
		if m, ok := ab[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := ba[b[i]]; ok && m != a[i] {
			return false
		}
		ab[a[i]] = b[i]
		ba[b[i]] = a[i]
	}
	return true
}

// EquivalentDBSCAN checks got (a labeling of pts, Noise = -1) against a
// fresh batch DBSCAN run with the same parameters:
//
//   - noise sets are identical;
//   - restricted to core points, the labelings are cluster-isomorphic
//     (a consistent bijection between cluster IDs);
//   - every border point's got-label is witnessed by some core point
//     within Eps carrying that label.
//
// A nil error means got is a valid DBSCAN labeling of pts.
func EquivalentDBSCAN(pts []geom.Point, eps float64, minPts int, got []int) error {
	if len(got) != len(pts) {
		return fmt.Errorf("stream: equivalence: %d labels for %d points", len(got), len(pts))
	}
	ref, err := dbscan.Cluster(pts, dbscan.Params{Eps: eps, MinPts: minPts}, dbscan.IndexGrid)
	if err != nil {
		return fmt.Errorf("stream: equivalence: batch oracle: %w", err)
	}
	for i := range pts {
		if (ref.Labels[i] == Noise) != (got[i] == Noise) {
			return fmt.Errorf("stream: equivalence: %v: batch label %d vs stream label %d (noise mismatch)",
				pts[i], ref.Labels[i], got[i])
		}
	}
	// Core isomorphism.
	r2g := make(map[int]int)
	g2r := make(map[int]int)
	for i := range pts {
		if !ref.Core[i] {
			continue
		}
		r, g := ref.Labels[i], got[i]
		if g == Noise {
			return fmt.Errorf("stream: equivalence: core %v labeled noise by stream", pts[i])
		}
		if m, ok := r2g[r]; ok && m != g {
			return fmt.Errorf("stream: equivalence: batch cluster %d maps to both stream %d and %d (at %v)",
				r, m, g, pts[i])
		}
		if m, ok := g2r[g]; ok && m != r {
			return fmt.Errorf("stream: equivalence: stream cluster %d maps to both batch %d and %d (at %v)",
				g, m, r, pts[i])
		}
		r2g[r] = g
		g2r[g] = r
	}
	// Border witness: the assigned cluster must own a core within Eps.
	idx := grid.NewIndex(grid.New(eps), pts)
	eps2 := eps * eps
	for i := range pts {
		if ref.Core[i] || got[i] == Noise {
			continue
		}
		witnessed := false
		idx.Neighbors(pts[i], eps, int32(i), func(j int32) {
			if ref.Core[j] && got[j] == got[i] && geom.Dist2(pts[i], pts[j]) <= eps2 {
				witnessed = true
			}
		})
		if !witnessed {
			return fmt.Errorf("stream: equivalence: border %v assigned stream cluster %d with no core witness within eps",
				pts[i], got[i])
		}
	}
	return nil
}
