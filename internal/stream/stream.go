// Package stream implements a sliding-window incremental DBSCAN engine
// over the Eps×Eps dense-box grid.
//
// The paper's headline scenario — Twitter geotags — is in production a
// firehose, not a batch file. This package maintains DBSCAN cluster
// labels over the last W ticks of arrivals: each Tick ingests a batch of
// points, expires the batch that arrived W ticks ago, and repairs the
// labeling incrementally. The grid cell is the incremental unit: a point
// arriving or expiring in cell c can only change core status inside
// c ∪ N(c) (its Moore neighborhood), so per-tick work scales with the
// number of dirtied cells, not the window size.
//
// Geometry shortcuts reuse the paper's dense-box argument (§3.2.3) at
// sub-box granularity Eps/3:
//
//   - a sub-box holding ≥ MinPts points makes every one of them core
//     (diagonal √2·Eps/3 < Eps);
//   - core points in sub-boxes within Chebyshev distance 1 are mutually
//     within Eps (a 2×2 sub-box block's diagonal is 2√2·Eps/3 < Eps),
//     yielding connectivity edges with no distance tests;
//   - sub-boxes at Chebyshev distance ≥ 5 cannot connect (minimum gap
//     4·Eps/3 > Eps); distance 2..4 needs explicit tests (at distance 4
//     the minimum gap is exactly Eps, and the Eps-neighborhood is
//     closed).
//
// Connectivity is tracked two-level, mirroring the paper's merge design:
// per-cell fragments (intra-cell core components, a dsu.DSU per rebuild)
// and a global fragment graph (dsu.Keyed over (cell, fragment) keys)
// whose inter-cell edges are cached per adjacent cell pair and
// recomputed only for pairs touching repaired cells. Component labeling
// is rebuilt from the cache every tick — O(#cells + #fragments + #edges),
// cheap next to neighborhood recomputation.
//
// Labels are a pure function of the window contents: border points
// anchor to their nearest core (ties to the smallest point ID) and
// cluster IDs are dense, ordered by each component's smallest member
// point ID. A drained engine restored from WindowState therefore
// reproduces labels exactly.
//
// Over-dense neighborhoods can optionally use subsampled ε-queries
// (Jiang, Jang & Łącki, "Faster DBSCAN via subsampled similarity
// queries"): when the 3×3 cell population reaches SubsampleThreshold,
// core tests examine each candidate with probability SubsampleRate
// (seeded, deterministic per point pair) and extrapolate. This trades
// exactness for bounded per-tick work; it is off by default.
package stream

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"repro/internal/dsu"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// Noise is the label of points not assigned to any cluster.
const Noise = -1

// Config parameterizes a stream engine.
type Config struct {
	// Eps is the DBSCAN neighborhood radius (and the grid cell side).
	Eps float64
	// MinPts is the DBSCAN density threshold, counting the point itself.
	MinPts int
	// WindowTicks is the sliding window length W: a point ingested at
	// tick t is part of the window for snapshots t .. t+W-1.
	WindowTicks int
	// SubsampleThreshold enables subsampled ε-queries for points whose
	// 3×3 cell population is at least this value (0 disables; the engine
	// is then exact).
	SubsampleThreshold int
	// SubsampleRate is the per-candidate sampling probability in (0,1]
	// used when SubsampleThreshold triggers.
	SubsampleRate float64
	// ReanchorEvery, when positive, forces a full recompute (all cells
	// dirty, connectivity cache rebuilt) every that-many ticks, bounding
	// any drift a bug in incremental repair could accumulate.
	ReanchorEvery int
	// Seed feeds the deterministic subsampling hash.
	Seed int64
	// Name labels this engine's metrics (default "stream").
	Name string
	// Telemetry receives per-tick spans and stream_* metrics (nil is
	// inert).
	Telemetry *telemetry.Hub
}

// TickStats summarizes one Tick's work.
type TickStats struct {
	Tick              int           // 1-based tick index just completed
	Arrivals          int           // points ingested this tick
	Expired           int           // points expired this tick
	DirtyCells        int           // cells with arrivals or expiries
	CoreCells         int           // cells whose points had core flags recomputed
	FragCells         int           // cells whose fragments were rebuilt
	PairsRebuilt      int           // adjacent cell pairs with edges recomputed
	BorderCells       int           // cells whose border anchors were reassigned
	SubsampledQueries int           // core tests that took the subsampled path
	WindowPoints      int           // live points after this tick
	Clusters          int           // clusters after this tick
	Reanchored        bool          // this tick ran a full re-anchor
	Elapsed           time.Duration // wall time spent in Tick
}

// fragKey identifies one intra-cell core fragment globally.
type fragKey struct {
	C grid.Coord
	F int32
}

// pairKey identifies an unordered adjacent cell pair; A.Less(B) holds.
type pairKey struct {
	A, B grid.Coord
}

// fragEdge records Eps-connectivity between fragment FA of the pair's A
// cell and fragment FB of its B cell.
type fragEdge struct {
	FA, FB int32
}

// cell holds the live points of one Eps×Eps grid cell, bucketed by
// Eps/3 sub-box, plus its current fragment decomposition.
type cell struct {
	pts     []int32                  // live slots in this cell
	buckets map[grid.Coord][]int32   // sub-box coord -> live slots
	nfrags  int32                    // fragments among this cell's cores
	fragMin []uint64                 // per fragment, smallest member point ID
}

// Engine is a sliding-window incremental DBSCAN engine. It is not safe
// for concurrent use; callers serialize Tick/Snapshot externally.
type Engine struct {
	cfg Config
	g   grid.Grid // Eps cells
	sg  grid.Grid // Eps/3 sub-boxes

	tick int // completed ticks

	// Slot storage: point state indexed by slot; expired slots recycle
	// through free.
	pts    []geom.Point
	live   []bool
	core   []bool
	frag   []int32 // fragment index within the slot's cell; -1 if not core
	anchor []int32 // core slot this point labels through; -1 = noise; self for cores
	free   []int32
	byID   map[uint64]int32

	ring  [][]int32 // ring[t%W] = slots that arrived at tick t
	cells map[grid.Coord]*cell
	pairs map[pairKey][]fragEdge

	cluster   map[fragKey]int32 // fragment -> dense cluster ID, rebuilt each tick
	nclusters int

	hub *telemetry.Hub
}

// New validates cfg and returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Eps <= 0 || math.IsNaN(cfg.Eps) || math.IsInf(cfg.Eps, 0) {
		return nil, fmt.Errorf("stream: eps must be positive and finite, got %v", cfg.Eps)
	}
	if cfg.MinPts < 1 {
		return nil, fmt.Errorf("stream: minPts must be >= 1, got %d", cfg.MinPts)
	}
	if cfg.WindowTicks < 1 {
		return nil, fmt.Errorf("stream: window must be >= 1 tick, got %d", cfg.WindowTicks)
	}
	if cfg.SubsampleThreshold > 0 && (cfg.SubsampleRate <= 0 || cfg.SubsampleRate > 1) {
		return nil, fmt.Errorf("stream: subsample rate must be in (0,1], got %v", cfg.SubsampleRate)
	}
	if cfg.ReanchorEvery < 0 {
		return nil, fmt.Errorf("stream: reanchor interval must be >= 0, got %d", cfg.ReanchorEvery)
	}
	if cfg.Name == "" {
		cfg.Name = "stream"
	}
	return &Engine{
		cfg:     cfg,
		g:       grid.New(cfg.Eps),
		sg:      grid.New(cfg.Eps / 3),
		byID:    make(map[uint64]int32),
		ring:    make([][]int32, cfg.WindowTicks),
		cells:   make(map[grid.Coord]*cell),
		pairs:   make(map[pairKey][]fragEdge),
		cluster: make(map[fragKey]int32),
		hub:     cfg.Telemetry,
	}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// TickIndex returns the number of completed ticks.
func (e *Engine) TickIndex() int { return e.tick }

// Len returns the number of live points in the window.
func (e *Engine) Len() int { return len(e.byID) }

// NumClusters returns the cluster count after the last tick.
func (e *Engine) NumClusters() int { return e.nclusters }

// Tick advances the window one step: the batch ingested WindowTicks ago
// expires, arrivals are ingested, and the labeling is repaired. The
// batch is validated before any mutation — on error the window is
// unchanged. Point IDs must be unique within the live window.
func (e *Engine) Tick(arrivals []geom.Point) (TickStats, error) {
	start := time.Now()
	batch := make(map[uint64]struct{}, len(arrivals))
	for _, p := range arrivals {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return TickStats{}, fmt.Errorf("stream: point %d has non-finite coordinates (%v, %v)", p.ID, p.X, p.Y)
		}
		if _, dup := batch[p.ID]; dup {
			return TickStats{}, fmt.Errorf("stream: duplicate point ID %d in batch", p.ID)
		}
		if _, dup := e.byID[p.ID]; dup {
			return TickStats{}, fmt.Errorf("stream: point ID %d already live in window", p.ID)
		}
		batch[p.ID] = struct{}{}
	}

	e.tick++
	sp := e.hub.Start(nil, "stream.tick",
		telemetry.String("stream", e.cfg.Name),
		telemetry.Int("tick", e.tick),
		telemetry.Int("arrivals", len(arrivals)))

	dirty := make(map[grid.Coord]struct{})
	slot := e.tick % e.cfg.WindowTicks

	// Expire the arrivals of tick-W.
	expired := len(e.ring[slot])
	for _, s := range e.ring[slot] {
		c := e.g.CellOf(e.pts[s])
		e.removeFromCell(c, s)
		dirty[c] = struct{}{}
		delete(e.byID, e.pts[s].ID)
		e.live[s] = false
		e.core[s] = false
		e.frag[s] = -1
		e.anchor[s] = -1
		e.free = append(e.free, s)
	}
	e.ring[slot] = e.ring[slot][:0]

	// Ingest this tick's arrivals.
	for _, p := range arrivals {
		s := e.alloc()
		e.pts[s] = p
		e.live[s] = true
		e.byID[p.ID] = s
		c := e.g.CellOf(p)
		e.insertIntoCell(c, s)
		dirty[c] = struct{}{}
		e.ring[slot] = append(e.ring[slot], s)
	}

	st := TickStats{
		Tick:       e.tick,
		Arrivals:   len(arrivals),
		Expired:    expired,
		DirtyCells: len(dirty),
	}
	if e.cfg.ReanchorEvery > 0 && e.tick%e.cfg.ReanchorEvery == 0 {
		e.reanchorAll(&st)
		st.Reanchored = true
	} else {
		e.repair(dirty, &st)
	}
	st.WindowPoints = len(e.byID)
	st.Clusters = e.nclusters
	st.Elapsed = time.Since(start)

	name := e.cfg.Name
	e.hub.Counter("stream_ticks_total", "stream", name).Inc()
	e.hub.Counter("stream_points_ingested_total", "stream", name).Add(int64(len(arrivals)))
	e.hub.Counter("stream_points_expired_total", "stream", name).Add(int64(expired))
	e.hub.Counter("stream_dirty_cells_total", "stream", name).Add(int64(st.DirtyCells))
	e.hub.Counter("stream_cells_recomputed_total", "stream", name).Add(int64(st.CoreCells))
	e.hub.Counter("stream_subsampled_queries_total", "stream", name).Add(int64(st.SubsampledQueries))
	if st.Reanchored {
		e.hub.Counter("stream_reanchors_total", "stream", name).Inc()
	}
	e.hub.Gauge("stream_window_points", "stream", name).Set(int64(len(e.byID)))
	e.hub.Gauge("stream_clusters", "stream", name).Set(int64(e.nclusters))
	e.hub.Histogram("stream_tick_seconds", []float64{.0001, .001, .01, .1, 1, 10}, "stream", name).
		Observe(st.Elapsed.Seconds())
	sp.Annotate(
		telemetry.Int("dirty_cells", st.DirtyCells),
		telemetry.Int("clusters", e.nclusters),
		telemetry.Int("window_points", len(e.byID)),
		telemetry.Bool("reanchored", st.Reanchored))
	sp.End()
	return st, nil
}

// repair re-establishes the labeling invariants after the cells in
// dirty gained or lost points. The five phases and their recompute sets:
//
//  1. core flags over dirty ∪ N(dirty) — a point's core status depends
//     only on its 3×3 cell neighborhood, so flips are confined there;
//  2. fragments for `changed` = non-empty dirty cells ∪ cells with a
//     core-flag flip — intra-cell connectivity between two untouched
//     cores is distance-based and static;
//  3. inter-cell fragment edges for pairs touching changed or emptied
//     cells (a vanished cell must drop its cached edges, or phantom
//     fragments would bridge live neighbors);
//  4. border anchors over N⁺(changed ∪ emptied) — any core a border
//     point could gain, lose, or re-rank lives in an adjacent cell of
//     one of those;
//  5. global relabel from the edge cache.
func (e *Engine) repair(dirty map[grid.Coord]struct{}, st *TickStats) {
	changed := make(map[grid.Coord]struct{})
	emptied := make(map[grid.Coord]struct{})
	for c := range dirty {
		cc := e.cells[c]
		if cc == nil || len(cc.pts) == 0 {
			if cc != nil {
				delete(e.cells, c)
			}
			emptied[c] = struct{}{}
			continue
		}
		changed[c] = struct{}{}
	}

	// Phase 1: core flags.
	inspect := make(map[grid.Coord]struct{}, 3*len(dirty))
	for c := range dirty {
		inspect[c] = struct{}{}
		for _, n := range c.Neighbors() {
			inspect[n] = struct{}{}
		}
	}
	for c := range inspect {
		cc := e.cells[c]
		if cc == nil {
			continue
		}
		st.CoreCells++
		flipped := false
		for _, s := range cc.pts {
			now := e.isCore(s, st)
			if now != e.core[s] {
				e.core[s] = now
				flipped = true
			}
		}
		if flipped {
			changed[c] = struct{}{}
		}
	}

	// Phase 2: fragments.
	for c := range changed {
		if cc := e.cells[c]; cc != nil {
			e.rebuildFragments(cc)
			st.FragCells++
		}
	}

	// Phase 3: inter-cell edges.
	stale := make(map[pairKey]struct{})
	for c := range changed {
		for _, n := range c.Neighbors() {
			stale[makePair(c, n)] = struct{}{}
		}
	}
	for c := range emptied {
		for _, n := range c.Neighbors() {
			stale[makePair(c, n)] = struct{}{}
		}
	}
	for pk := range stale {
		e.rebuildPair(pk)
		st.PairsRebuilt++
	}

	// Phase 4: border anchors.
	borders := make(map[grid.Coord]struct{})
	for c := range changed {
		borders[c] = struct{}{}
		for _, n := range c.Neighbors() {
			borders[n] = struct{}{}
		}
	}
	for c := range emptied {
		for _, n := range c.Neighbors() {
			borders[n] = struct{}{}
		}
	}
	for c := range borders {
		if cc := e.cells[c]; cc != nil {
			e.reassignBorders(cc)
			st.BorderCells++
		}
	}

	// Phase 5: relabel.
	e.relabel()
}

// reanchorAll discards the connectivity cache and recomputes everything,
// bounding incremental drift (and powering Restore).
func (e *Engine) reanchorAll(st *TickStats) {
	e.pairs = make(map[pairKey][]fragEdge)
	dirty := make(map[grid.Coord]struct{}, len(e.cells))
	for c := range e.cells {
		dirty[c] = struct{}{}
	}
	e.repair(dirty, st)
}

// isCore computes the DBSCAN core predicate for slot s: at least
// MinPts-1 other points within Eps (the Eps-neighborhood is closed).
func (e *Engine) isCore(s int32, st *TickStats) bool {
	if e.cfg.MinPts <= 1 {
		return true
	}
	p := e.pts[s]
	c := e.g.CellOf(p)
	cc := e.cells[c]
	// Dense-box shortcut: an Eps/3 sub-box with >= MinPts points makes
	// all of them core without a single distance test.
	if len(cc.buckets[e.sg.CellOf(p)]) >= e.cfg.MinPts {
		return true
	}
	around := cellsAround(c)
	if e.cfg.SubsampleThreshold > 0 {
		pop := 0
		for _, n := range around {
			if nc := e.cells[n]; nc != nil {
				pop += len(nc.pts)
			}
		}
		if pop >= e.cfg.SubsampleThreshold {
			return e.isCoreSampled(s, p, around, st)
		}
	}
	eps2 := e.cfg.Eps * e.cfg.Eps
	need := e.cfg.MinPts - 1
	count := 0
	for _, n := range around {
		nc := e.cells[n]
		if nc == nil {
			continue
		}
		for _, q := range nc.pts {
			if q == s {
				continue
			}
			if geom.Dist2(p, e.pts[q]) <= eps2 {
				count++
				if count >= need {
					return true
				}
			}
		}
	}
	return false
}

// isCoreSampled is the subsampled ε-query path: each candidate is
// examined with probability SubsampleRate (deterministic per point
// pair), and the hit count is compared against the proportionally
// scaled threshold.
func (e *Engine) isCoreSampled(s int32, p geom.Point, around [9]grid.Coord, st *TickStats) bool {
	st.SubsampledQueries++
	rate := e.cfg.SubsampleRate
	need := rate * float64(e.cfg.MinPts-1)
	eps2 := e.cfg.Eps * e.cfg.Eps
	hits := 0.0
	for _, n := range around {
		nc := e.cells[n]
		if nc == nil {
			continue
		}
		for _, q := range nc.pts {
			if q == s {
				continue
			}
			if !sampled(e.cfg.Seed, p.ID, e.pts[q].ID, rate) {
				continue
			}
			if geom.Dist2(p, e.pts[q]) <= eps2 {
				hits++
				if hits >= need {
					return true
				}
			}
		}
	}
	return hits >= need
}

// rebuildFragments recomputes cc's intra-cell core components. Cores in
// one sub-box are mutually within Eps, so fragments are unions of whole
// sub-box core sets; only sub-box pairs at Chebyshev distance 2 (the
// in-cell maximum) need distance tests.
func (e *Engine) rebuildFragments(cc *cell) {
	type bucket struct {
		sb    grid.Coord
		cores []int32
	}
	var buckets []bucket
	for sb, slots := range cc.buckets {
		var cores []int32
		for _, s := range slots {
			if e.core[s] {
				cores = append(cores, s)
			}
		}
		if len(cores) > 0 {
			buckets = append(buckets, bucket{sb, cores})
		}
	}

	d := dsu.New(len(buckets))
	eps2 := e.cfg.Eps * e.cfg.Eps
	for i := 0; i < len(buckets); i++ {
		for j := i + 1; j < len(buckets); j++ {
			if chebyshev(buckets[i].sb, buckets[j].sb) <= 1 {
				d.Union(i, j)
				continue
			}
			if bucketsTouch(e.pts, buckets[i].cores, buckets[j].cores, eps2) {
				d.Union(i, j)
			}
		}
	}

	slotBucket := make(map[int32]int, len(cc.pts))
	for bi := range buckets {
		for _, s := range buckets[bi].cores {
			slotBucket[s] = bi
		}
	}
	rootFrag := make(map[int]int32, len(buckets))
	cc.nfrags = 0
	cc.fragMin = cc.fragMin[:0]
	for _, s := range cc.pts {
		if !e.core[s] {
			e.frag[s] = -1
			continue
		}
		r := d.Find(slotBucket[s])
		f, ok := rootFrag[r]
		if !ok {
			f = cc.nfrags
			cc.nfrags++
			rootFrag[r] = f
			cc.fragMin = append(cc.fragMin, e.pts[s].ID)
		} else if id := e.pts[s].ID; id < cc.fragMin[f] {
			cc.fragMin[f] = id
		}
		e.frag[s] = f
	}
}

// rebuildPair recomputes the fragment edges between an adjacent cell
// pair. Sub-box pairs at Chebyshev distance <= 1 connect for free,
// >= 5 cannot connect, and 2..4 take one early-exit distance scan; one
// hit per bucket pair suffices because a bucket's cores share a
// fragment.
func (e *Engine) rebuildPair(pk pairKey) {
	ca, cb := e.cells[pk.A], e.cells[pk.B]
	if ca == nil || cb == nil || ca.nfrags == 0 || cb.nfrags == 0 {
		delete(e.pairs, pk)
		return
	}
	bucketsA := e.coreBuckets(ca)
	bucketsB := e.coreBuckets(cb)
	eps2 := e.cfg.Eps * e.cfg.Eps
	var edges []fragEdge
	seen := make(map[fragEdge]struct{})
	for _, ba := range bucketsA {
		for _, bb := range bucketsB {
			dc := chebyshev(ba.sb, bb.sb)
			if dc >= 5 {
				continue
			}
			ed := fragEdge{FA: e.frag[ba.cores[0]], FB: e.frag[bb.cores[0]]}
			if _, dup := seen[ed]; dup {
				continue
			}
			if dc <= 1 || bucketsTouch(e.pts, ba.cores, bb.cores, eps2) {
				seen[ed] = struct{}{}
				edges = append(edges, ed)
			}
		}
	}
	if len(edges) == 0 {
		delete(e.pairs, pk)
	} else {
		e.pairs[pk] = edges
	}
}

type coreBucket struct {
	sb    grid.Coord
	cores []int32
}

func (e *Engine) coreBuckets(cc *cell) []coreBucket {
	out := make([]coreBucket, 0, len(cc.buckets))
	for sb, slots := range cc.buckets {
		var cores []int32
		for _, s := range slots {
			if e.core[s] {
				cores = append(cores, s)
			}
		}
		if len(cores) > 0 {
			out = append(out, coreBucket{sb, cores})
		}
	}
	return out
}

// reassignBorders recomputes the anchor of every point in cc: cores
// anchor to themselves; non-cores anchor to the nearest core within Eps
// (ties to the smallest point ID, keeping labels a pure function of the
// window contents), or to nothing (noise).
func (e *Engine) reassignBorders(cc *cell) {
	eps2 := e.cfg.Eps * e.cfg.Eps
	for _, s := range cc.pts {
		if e.core[s] {
			e.anchor[s] = s
			continue
		}
		p := e.pts[s]
		best := int32(-1)
		bestD := math.Inf(1)
		var bestID uint64
		for _, n := range cellsAround(e.g.CellOf(p)) {
			nc := e.cells[n]
			if nc == nil {
				continue
			}
			for _, q := range nc.pts {
				if !e.core[q] {
					continue
				}
				d := geom.Dist2(p, e.pts[q])
				if d > eps2 {
					continue
				}
				id := e.pts[q].ID
				if best < 0 || d < bestD || (d == bestD && id < bestID) {
					best, bestD, bestID = q, d, id
				}
			}
		}
		e.anchor[s] = best
	}
}

// relabel rebuilds the global cluster map from the fragment graph.
// Cluster IDs are dense and ordered by each component's smallest member
// point ID, so they are stable across restarts and re-anchors.
func (e *Engine) relabel() {
	k := dsu.NewKeyed[fragKey]()
	for c, cc := range e.cells {
		for f := int32(0); f < cc.nfrags; f++ {
			k.Add(fragKey{c, f})
		}
	}
	for pk, edges := range e.pairs {
		ca, cb := e.cells[pk.A], e.cells[pk.B]
		if ca == nil || cb == nil {
			continue
		}
		for _, ed := range edges {
			// Guard against a stale edge outliving a fragment rebuild.
			if ed.FA >= ca.nfrags || ed.FB >= cb.nfrags {
				continue
			}
			k.Union(fragKey{pk.A, ed.FA}, fragKey{pk.B, ed.FB})
		}
	}
	compMin := make(map[fragKey]uint64)
	for c, cc := range e.cells {
		for f := int32(0); f < cc.nfrags; f++ {
			r := k.Find(fragKey{c, f})
			if m, ok := compMin[r]; !ok || cc.fragMin[f] < m {
				compMin[r] = cc.fragMin[f]
			}
		}
	}
	type comp struct {
		root fragKey
		min  uint64
	}
	comps := make([]comp, 0, len(compMin))
	for r, m := range compMin {
		comps = append(comps, comp{r, m})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].min < comps[j].min })
	id := make(map[fragKey]int32, len(comps))
	for i, cp := range comps {
		id[cp.root] = int32(i)
	}
	e.cluster = make(map[fragKey]int32)
	for c, cc := range e.cells {
		for f := int32(0); f < cc.nfrags; f++ {
			fk := fragKey{c, f}
			e.cluster[fk] = id[k.Find(fk)]
		}
	}
	e.nclusters = len(comps)
}

// labelOf resolves slot s's cluster label through its anchor.
func (e *Engine) labelOf(s int32) int {
	a := e.anchor[s]
	if a < 0 {
		return Noise
	}
	fk := fragKey{e.g.CellOf(e.pts[a]), e.frag[a]}
	if cl, ok := e.cluster[fk]; ok {
		return int(cl)
	}
	return Noise
}

// Snapshot is a consistent view of the window after a tick: points in
// ascending ID order with their labels (Noise = -1).
type Snapshot struct {
	Tick        int
	Points      []geom.Point
	Labels      []int
	NumClusters int
}

// Snapshot materializes the current window labeling. O(window size).
func (e *Engine) Snapshot() Snapshot {
	slots := make([]int32, 0, len(e.byID))
	for _, s := range e.byID {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return e.pts[slots[i]].ID < e.pts[slots[j]].ID })
	snap := Snapshot{
		Tick:        e.tick,
		Points:      make([]geom.Point, len(slots)),
		Labels:      make([]int, len(slots)),
		NumClusters: e.nclusters,
	}
	for i, s := range slots {
		snap.Points[i] = e.pts[s]
		snap.Labels[i] = e.labelOf(s)
	}
	return snap
}

// WindowState is the durable form of an engine's window: the arrival
// batches still inside it, keyed by tick, plus the tick cursor. It gob-
// encodes cleanly for checkpoint.Store.
type WindowState struct {
	Tick  int
	Ticks []TickArrivals
}

// TickArrivals records the points that arrived at one tick.
type TickArrivals struct {
	Tick   int
	Points []geom.Point
}

// WindowState captures the engine's durable state. Labels are not
// saved: they are a pure function of the window contents, so Restore
// recomputes them and lands on an identical labeling.
func (e *Engine) WindowState() WindowState {
	ws := WindowState{Tick: e.tick}
	lo := e.tick - e.cfg.WindowTicks + 1
	if lo < 1 {
		lo = 1
	}
	for t := lo; t <= e.tick; t++ {
		slots := e.ring[t%e.cfg.WindowTicks]
		if len(slots) == 0 {
			continue
		}
		pts := make([]geom.Point, len(slots))
		for i, s := range slots {
			pts[i] = e.pts[s]
		}
		ws.Ticks = append(ws.Ticks, TickArrivals{Tick: t, Points: pts})
	}
	return ws
}

// Restore rebuilds an engine from a saved WindowState and re-anchors
// it. The restored engine's labels equal the saving engine's exactly.
func Restore(cfg Config, ws WindowState) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if ws.Tick < 0 {
		return nil, fmt.Errorf("stream: restore: negative tick %d", ws.Tick)
	}
	seenTick := make(map[int]struct{}, len(ws.Ticks))
	for _, ta := range ws.Ticks {
		if ta.Tick < 1 || ta.Tick > ws.Tick || ta.Tick <= ws.Tick-e.cfg.WindowTicks {
			return nil, fmt.Errorf("stream: restore: tick %d outside window ending at %d", ta.Tick, ws.Tick)
		}
		if _, dup := seenTick[ta.Tick]; dup {
			return nil, fmt.Errorf("stream: restore: tick %d recorded twice", ta.Tick)
		}
		seenTick[ta.Tick] = struct{}{}
		slot := ta.Tick % e.cfg.WindowTicks
		for _, p := range ta.Points {
			if _, dup := e.byID[p.ID]; dup {
				return nil, fmt.Errorf("stream: restore: point ID %d recorded twice", p.ID)
			}
			s := e.alloc()
			e.pts[s] = p
			e.live[s] = true
			e.byID[p.ID] = s
			e.insertIntoCell(e.g.CellOf(p), s)
			e.ring[slot] = append(e.ring[slot], s)
		}
	}
	e.tick = ws.Tick
	var st TickStats
	e.reanchorAll(&st)
	return e, nil
}

// --- slot and cell plumbing ---

func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.pts = append(e.pts, geom.Point{})
	e.live = append(e.live, false)
	e.core = append(e.core, false)
	e.frag = append(e.frag, -1)
	e.anchor = append(e.anchor, -1)
	return int32(len(e.pts) - 1)
}

func (e *Engine) insertIntoCell(c grid.Coord, s int32) {
	cc := e.cells[c]
	if cc == nil {
		cc = &cell{buckets: make(map[grid.Coord][]int32)}
		e.cells[c] = cc
	}
	cc.pts = append(cc.pts, s)
	sb := e.sg.CellOf(e.pts[s])
	cc.buckets[sb] = append(cc.buckets[sb], s)
}

// removeFromCell detaches s; an emptied cell stays in the map until the
// next repair classifies it (so its pair edges are invalidated there).
func (e *Engine) removeFromCell(c grid.Coord, s int32) {
	cc := e.cells[c]
	cc.pts = removeSlot(cc.pts, s)
	sb := e.sg.CellOf(e.pts[s])
	b := removeSlot(cc.buckets[sb], s)
	if len(b) == 0 {
		delete(cc.buckets, sb)
	} else {
		cc.buckets[sb] = b
	}
}

func removeSlot(s []int32, v int32) []int32 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// --- geometry helpers ---

func cellsAround(c grid.Coord) [9]grid.Coord {
	n := c.Neighbors()
	var out [9]grid.Coord
	out[0] = c
	copy(out[1:], n[:])
	return out
}

func chebyshev(a, b grid.Coord) int32 {
	dx := a.CX - b.CX
	if dx < 0 {
		dx = -dx
	}
	dy := a.CY - b.CY
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

func makePair(a, b grid.Coord) pairKey {
	if b.Less(a) {
		a, b = b, a
	}
	return pairKey{a, b}
}

// bucketsTouch reports whether any cross pair is within eps2, with
// early exit on the first hit.
func bucketsTouch(pts []geom.Point, as, bs []int32, eps2 float64) bool {
	for _, a := range as {
		for _, b := range bs {
			if geom.Dist2(pts[a], pts[b]) <= eps2 {
				return true
			}
		}
	}
	return false
}

// sampled is the deterministic per-pair coin for subsampled ε-queries:
// a splitmix64-style hash of (seed, p, q) compared against rate.
func sampled(seed int64, a, b uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	x := uint64(seed)
	x ^= a * 0x9E3779B97F4A7C15
	x ^= bits.RotateLeft64(b*0xBF58476D1CE4E5B9, 31)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}
