package stream

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
)

// benchWindow builds a steady-state 100k-point window (20 ticks × 5k)
// plus follow-on batches to tick through during measurement.
func benchWindow(b *testing.B) (*Engine, [][]geom.Point) {
	b.Helper()
	const (
		window  = 20
		perTick = 5000
	)
	batches := dataset.Firehose(window+b.N+1, perTick, 9, dataset.DefaultFirehoseOptions())
	e, err := New(Config{Eps: 0.12, MinPts: 8, WindowTicks: window})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range batches[:window] {
		if _, err := e.Tick(batch); err != nil {
			b.Fatal(err)
		}
	}
	return e, batches[window:]
}

// BenchmarkStreamTick measures one incremental tick (5k arrivals + 5k
// expiries) against a 100k-point steady-state window. Compare with
// BenchmarkStreamFullRecluster: per-tick cost tracks the dirtied-cell
// count, not the window size.
func BenchmarkStreamTick(b *testing.B) {
	e, batches := benchWindow(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Tick(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamFullRecluster is the baseline BenchmarkStreamTick
// beats: a from-scratch batch DBSCAN over the same 100k-point window
// every tick.
func BenchmarkStreamFullRecluster(b *testing.B) {
	e, _ := benchWindow(b)
	snap := e.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dbscan.Cluster(snap.Points, dbscan.Params{Eps: 0.12, MinPts: 8}, dbscan.IndexGrid); err != nil {
			b.Fatal(err)
		}
	}
}
