package stream

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/quality"
	"repro/internal/telemetry"
)

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func mustTick(t *testing.T, e *Engine, batch []geom.Point) TickStats {
	t.Helper()
	st, err := e.Tick(batch)
	if err != nil {
		t.Fatalf("Tick %d: %v", e.TickIndex()+1, err)
	}
	return st
}

// checkSnapshot asserts the engine's current labeling is a valid DBSCAN
// labeling of the window contents.
func checkSnapshot(t *testing.T, e *Engine) Snapshot {
	t.Helper()
	snap := e.Snapshot()
	if err := EquivalentDBSCAN(snap.Points, e.Config().Eps, e.Config().MinPts, snap.Labels); err != nil {
		t.Fatalf("tick %d (window %d points): %v", snap.Tick, len(snap.Points), err)
	}
	return snap
}

// TestIncrementalMatchesBatch is the headline correctness gate: over 20
// seeded random tick sequences (arrivals, expiries, hotspot drift), the
// incremental labeling after every tick is cluster-isomorphic to batch
// DBSCAN on the current window.
func TestIncrementalMatchesBatch(t *testing.T) {
	const seeds = 20
	ticks := 18
	perTick := 60
	if testing.Short() {
		ticks = 10
		perTick = 40
	}
	for s := 0; s < seeds; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			opt := dataset.DefaultFirehoseOptions()
			opt.Hotspots = 3 + s%4
			batches := dataset.Firehose(ticks, perTick, int64(1000+s), opt)
			e := mustEngine(t, Config{
				Eps:         0.12,
				MinPts:      5,
				WindowTicks: 6,
				Seed:        int64(s),
			})
			for _, b := range batches {
				mustTick(t, e, b)
				checkSnapshot(t, e)
			}
		})
	}
}

// TestReanchorIsNoOp runs the same sequence with and without periodic
// full re-anchoring; since incremental repair is exact, re-anchoring
// must not change a single label.
func TestReanchorIsNoOp(t *testing.T) {
	batches := dataset.Firehose(15, 50, 77, dataset.DefaultFirehoseOptions())
	a := mustEngine(t, Config{Eps: 0.12, MinPts: 5, WindowTicks: 5})
	b := mustEngine(t, Config{Eps: 0.12, MinPts: 5, WindowTicks: 5, ReanchorEvery: 3})
	reanchors := 0
	for _, batch := range batches {
		mustTick(t, a, batch)
		st := mustTick(t, b, batch)
		if st.Reanchored {
			reanchors++
		}
		sa, sb := a.Snapshot(), b.Snapshot()
		for i := range sa.Labels {
			if sa.Labels[i] != sb.Labels[i] {
				t.Fatalf("tick %d: label diverges at point %v: %d vs %d (reanchored=%v)",
					sa.Tick, sa.Points[i], sa.Labels[i], sb.Labels[i], st.Reanchored)
			}
		}
	}
	if reanchors != 5 {
		t.Fatalf("expected 5 re-anchors in 15 ticks at every 3, got %d", reanchors)
	}
}

// TestWindowExpiresToEmpty feeds points then silence: after W empty
// ticks the window must be empty with zero clusters, and the engine
// must keep accepting points afterwards.
func TestWindowExpiresToEmpty(t *testing.T) {
	e := mustEngine(t, Config{Eps: 1, MinPts: 3, WindowTicks: 3})
	pts := []geom.Point{{ID: 1, X: 0, Y: 0}, {ID: 2, X: 0.1, Y: 0}, {ID: 3, X: 0, Y: 0.1}}
	mustTick(t, e, pts)
	if e.Len() != 3 || e.NumClusters() != 1 {
		t.Fatalf("after ingest: %d points, %d clusters; want 3, 1", e.Len(), e.NumClusters())
	}
	for i := 0; i < 3; i++ {
		mustTick(t, e, nil)
		checkSnapshot(t, e)
	}
	if e.Len() != 0 || e.NumClusters() != 0 {
		t.Fatalf("after expiry: %d points, %d clusters; want 0, 0", e.Len(), e.NumClusters())
	}
	snap := e.Snapshot()
	if len(snap.Points) != 0 || len(snap.Labels) != 0 {
		t.Fatalf("empty window snapshot has %d points, %d labels", len(snap.Points), len(snap.Labels))
	}
	// The engine keeps working after going empty (IDs may be reused
	// once their originals expired).
	mustTick(t, e, pts)
	checkSnapshot(t, e)
	if e.Len() != 3 || e.NumClusters() != 1 {
		t.Fatalf("after re-ingest: %d points, %d clusters; want 3, 1", e.Len(), e.NumClusters())
	}
}

// TestAllDuplicatesOneCell drops many coincident points (distinct IDs,
// identical coordinates) into one cell: with count >= MinPts all are
// core in one cluster; below MinPts (counting self) all are noise.
func TestAllDuplicatesOneCell(t *testing.T) {
	dup := func(n int, base uint64) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{ID: base + uint64(i), X: 0.5, Y: 0.5}
		}
		return pts
	}
	e := mustEngine(t, Config{Eps: 1, MinPts: 5, WindowTicks: 2})
	mustTick(t, e, dup(8, 0))
	snap := checkSnapshot(t, e)
	if snap.NumClusters != 1 {
		t.Fatalf("8 duplicates with MinPts=5: %d clusters, want 1", snap.NumClusters)
	}
	for i, l := range snap.Labels {
		if l != 0 {
			t.Fatalf("duplicate point %d labeled %d, want 0", i, l)
		}
	}

	e2 := mustEngine(t, Config{Eps: 1, MinPts: 5, WindowTicks: 2})
	mustTick(t, e2, dup(4, 100))
	snap2 := checkSnapshot(t, e2)
	if snap2.NumClusters != 0 {
		t.Fatalf("4 duplicates with MinPts=5: %d clusters, want 0", snap2.NumClusters)
	}
	for i, l := range snap2.Labels {
		if l != Noise {
			t.Fatalf("sub-threshold duplicate %d labeled %d, want noise", i, l)
		}
	}
}

// TestBridgeExpirySplitsCluster builds two dense blobs joined by a
// bridge; when the bridge (ingested first) expires, the cluster must
// split in two.
func TestBridgeExpirySplitsCluster(t *testing.T) {
	blob := func(cx, cy float64, base uint64) []geom.Point {
		out := make([]geom.Point, 0, 9)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				out = append(out, geom.Point{
					ID: base + uint64(3*i+j),
					X:  cx + float64(i)*0.02,
					Y:  cy + float64(j)*0.02,
				})
			}
		}
		return out
	}
	// Blobs at x=0 and x=3, bridge points every 0.08 between them: with
	// Eps=0.1 and MinPts=3 each interior bridge point is core through
	// its two chain neighbors, so the chain is the only connection.
	var bridge []geom.Point
	id := uint64(1000)
	for x := 0.05; x < 2.99; x += 0.08 {
		bridge = append(bridge, geom.Point{ID: id, X: x, Y: 0.02})
		id++
	}
	e := mustEngine(t, Config{Eps: 0.1, MinPts: 3, WindowTicks: 2})
	mustTick(t, e, bridge) // tick 1: bridge
	both := append(blob(-0.06, 0, 0), blob(3.02, 0, 100)...)
	mustTick(t, e, both) // tick 2: blobs; bridge still live
	snap := checkSnapshot(t, e)
	if snap.NumClusters != 1 {
		t.Fatalf("with bridge: %d clusters, want 1", snap.NumClusters)
	}
	mustTick(t, e, nil) // tick 3: bridge (tick 1) expires
	snap = checkSnapshot(t, e)
	if snap.NumClusters != 2 {
		t.Fatalf("after bridge expiry: %d clusters, want 2", snap.NumClusters)
	}
}

// TestCellBoundaryCrossing ingests points that straddle a grid cell
// boundary in different ticks: the cross-cell Eps links must connect
// them into one cluster, and expiry of one side must demote the rest.
func TestCellBoundaryCrossing(t *testing.T) {
	// Eps = 1, so x = 0.99 and x = 1.01 are in different cells but only
	// 0.02 apart.
	left := []geom.Point{
		{ID: 1, X: 0.97, Y: 0.5}, {ID: 2, X: 0.98, Y: 0.5}, {ID: 3, X: 0.99, Y: 0.5},
	}
	right := []geom.Point{
		{ID: 4, X: 1.01, Y: 0.5}, {ID: 5, X: 1.02, Y: 0.5}, {ID: 6, X: 1.03, Y: 0.5},
	}
	e := mustEngine(t, Config{Eps: 1, MinPts: 4, WindowTicks: 3})
	mustTick(t, e, left)
	snap := checkSnapshot(t, e)
	if snap.NumClusters != 0 {
		t.Fatalf("left half alone: %d clusters, want 0 (3 points < MinPts=4)", snap.NumClusters)
	}
	mustTick(t, e, right) // tick 2: the other side of the boundary arrives
	snap = checkSnapshot(t, e)
	if snap.NumClusters != 1 {
		t.Fatalf("both halves: %d clusters, want 1", snap.NumClusters)
	}
	for i, l := range snap.Labels {
		if l != 0 {
			t.Fatalf("point %v labeled %d, want 0", snap.Points[i], l)
		}
	}
	mustTick(t, e, nil)
	mustTick(t, e, nil) // tick 4: left (tick 1) expired
	snap = checkSnapshot(t, e)
	if len(snap.Points) != 3 || snap.NumClusters != 0 {
		t.Fatalf("after left expiry: %d points, %d clusters; want 3, 0", len(snap.Points), snap.NumClusters)
	}
}

// TestRejectedBatchLeavesWindowUntouched checks batch validation is
// atomic: a batch with a duplicate or non-finite point mutates nothing.
func TestRejectedBatchLeavesWindowUntouched(t *testing.T) {
	e := mustEngine(t, Config{Eps: 1, MinPts: 2, WindowTicks: 4})
	mustTick(t, e, []geom.Point{{ID: 1, X: 0, Y: 0}, {ID: 2, X: 0.1, Y: 0}})
	before := e.Snapshot()

	cases := [][]geom.Point{
		{{ID: 1, X: 5, Y: 5}},                      // already live
		{{ID: 9, X: 5, Y: 5}, {ID: 9, X: 6, Y: 6}}, // duplicate within batch
		{{ID: 10, X: math.NaN(), Y: 0}},            // NaN coordinate
	}
	for i, bad := range cases {
		if _, err := e.Tick(bad); err == nil {
			t.Fatalf("case %d: bad batch accepted", i)
		}
	}
	after := e.Snapshot()
	if after.Tick != before.Tick || len(after.Points) != len(before.Points) {
		t.Fatalf("rejected batches mutated the window: tick %d->%d, points %d->%d",
			before.Tick, after.Tick, len(before.Points), len(after.Points))
	}
	for i := range after.Labels {
		if after.Labels[i] != before.Labels[i] || after.Points[i] != before.Points[i] {
			t.Fatalf("rejected batches changed labeling at %d", i)
		}
	}
}

// TestWindowStateRoundTrip drains an engine mid-stream, restores it
// from the WindowState, and checks the restored labels are identical —
// then keeps ticking both and requires they stay identical.
func TestWindowStateRoundTrip(t *testing.T) {
	batches := dataset.Firehose(14, 45, 42, dataset.DefaultFirehoseOptions())
	cfg := Config{Eps: 0.12, MinPts: 5, WindowTicks: 5}
	e := mustEngine(t, cfg)
	for _, b := range batches[:8] {
		mustTick(t, e, b)
	}
	ws := e.WindowState()
	r, err := Restore(cfg, ws)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	compare := func(stage string) {
		t.Helper()
		se, sr := e.Snapshot(), r.Snapshot()
		if se.Tick != sr.Tick || len(se.Points) != len(sr.Points) {
			t.Fatalf("%s: tick %d/%d, points %d/%d", stage, se.Tick, sr.Tick, len(se.Points), len(sr.Points))
		}
		for i := range se.Points {
			if se.Points[i] != sr.Points[i] || se.Labels[i] != sr.Labels[i] {
				t.Fatalf("%s: restored engine diverges at %v: label %d vs %d",
					stage, se.Points[i], se.Labels[i], sr.Labels[i])
			}
		}
	}
	compare("immediately after restore")
	for i, b := range batches[8:] {
		mustTick(t, e, b)
		mustTick(t, r, b)
		compare(fmt.Sprintf("tick %d after restore", i+1))
	}
	checkSnapshot(t, r)
}

// TestRestoreRejectsBadState covers the WindowState validators.
func TestRestoreRejectsBadState(t *testing.T) {
	cfg := Config{Eps: 1, MinPts: 2, WindowTicks: 3}
	cases := []WindowState{
		{Tick: 5, Ticks: []TickArrivals{{Tick: 1, Points: nil}}},  // outside window
		{Tick: 5, Ticks: []TickArrivals{{Tick: 6, Points: nil}}},  // in the future
		{Tick: -1},                                                // negative cursor
		{Tick: 5, Ticks: []TickArrivals{{Tick: 4}, {Tick: 4}}},    // duplicate tick
		{Tick: 5, Ticks: []TickArrivals{{Tick: 4, Points: []geom.Point{{ID: 7}, {ID: 7, X: 1}}}}}, // duplicate ID
	}
	for i, ws := range cases {
		if _, err := Restore(cfg, ws); err == nil {
			t.Fatalf("case %d: invalid WindowState accepted", i)
		}
	}
}

// TestSubsampledQuality checks the approximate path: with subsampling
// forced on, labels must still score above a quality floor against the
// exact batch labeling (DBDC), and the subsampled path must actually
// run.
func TestSubsampledQuality(t *testing.T) {
	batches := dataset.Firehose(8, 250, 7, dataset.DefaultFirehoseOptions())
	e := mustEngine(t, Config{
		Eps:                0.15,
		MinPts:             5,
		WindowTicks:        4,
		SubsampleThreshold: 40,
		SubsampleRate:      0.7,
		Seed:               7,
	})
	sampledQueries := 0
	for _, b := range batches {
		st := mustTick(t, e, b)
		sampledQueries += st.SubsampledQueries
	}
	if sampledQueries == 0 {
		t.Fatal("subsampled path never triggered; threshold too high for this workload")
	}
	snap := e.Snapshot()
	ref, err := dbscan.Cluster(snap.Points, dbscan.Params{Eps: 0.15, MinPts: 5}, dbscan.IndexGrid)
	if err != nil {
		t.Fatalf("batch oracle: %v", err)
	}
	score, err := quality.Score(ref.Labels, snap.Labels)
	if err != nil {
		t.Fatalf("quality.Score: %v", err)
	}
	if score < 0.9 {
		t.Fatalf("subsampled labeling DBDC %.3f below 0.9 floor", score)
	}
}

// TestTickStatsLocality asserts the repair bookkeeping itself is local:
// a tick touching one cell must not recompute cells far away.
func TestTickStatsLocality(t *testing.T) {
	e := mustEngine(t, Config{Eps: 1, MinPts: 3, WindowTicks: 100})
	// A 20×1 strip of well-separated dense cells.
	var first []geom.Point
	id := uint64(0)
	for c := 0; c < 20; c++ {
		for k := 0; k < 5; k++ {
			first = append(first, geom.Point{ID: id, X: float64(c)*3 + float64(k)*0.05, Y: 0.5})
			id++
		}
	}
	mustTick(t, e, first)
	st := mustTick(t, e, []geom.Point{{ID: id, X: 0.3, Y: 0.55}})
	if st.DirtyCells != 1 {
		t.Fatalf("single arrival dirtied %d cells, want 1", st.DirtyCells)
	}
	if st.CoreCells > 9 {
		t.Fatalf("single arrival recomputed %d cells' core flags, want <= 9", st.CoreCells)
	}
	if st.FragCells > 9 || st.BorderCells > 25 {
		t.Fatalf("single arrival rebuilt %d frag cells / %d border cells; repair is not local",
			st.FragCells, st.BorderCells)
	}
	checkSnapshot(t, e)
}

// TestStreamMetrics checks the engine reports through its hub with the
// stream label.
func TestStreamMetrics(t *testing.T) {
	hub := telemetry.New(nil)
	e := mustEngine(t, Config{Eps: 1, MinPts: 2, WindowTicks: 2, Name: "t", Telemetry: hub})
	mustTick(t, e, []geom.Point{{ID: 1, X: 0, Y: 0}, {ID: 2, X: 0.1, Y: 0}})
	if got := hub.Counter("stream_ticks_total", "stream", "t").Value(); got != 1 {
		t.Fatalf("stream_ticks_total = %d, want 1", got)
	}
	if got := hub.Counter("stream_points_ingested_total", "stream", "t").Value(); got != 2 {
		t.Fatalf("stream_points_ingested_total = %d, want 2", got)
	}
	if got := hub.Gauge("stream_window_points", "stream", "t").Value(); got != 2 {
		t.Fatalf("stream_window_points = %d, want 2", got)
	}
}

// TestConfigValidation covers New's rejects.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Eps: 0, MinPts: 2, WindowTicks: 2},
		{Eps: -1, MinPts: 2, WindowTicks: 2},
		{Eps: 1, MinPts: 0, WindowTicks: 2},
		{Eps: 1, MinPts: 2, WindowTicks: 0},
		{Eps: 1, MinPts: 2, WindowTicks: 2, SubsampleThreshold: 10},                    // rate unset
		{Eps: 1, MinPts: 2, WindowTicks: 2, SubsampleThreshold: 10, SubsampleRate: 2}, // rate > 1
		{Eps: 1, MinPts: 2, WindowTicks: 2, ReanchorEvery: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// TestIncrementalFasterThanRecluster is an end-to-end sanity check of
// the design's point: at a 100k-point window, an incremental tick must
// beat a from-scratch batch recluster comfortably. The precise 5×
// bound is measured by BenchmarkStreamTick; here we assert a generous
// 2× so CI noise cannot flake the suite.
func TestIncrementalFasterThanRecluster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const (
		window  = 20
		perTick = 5000 // 100k-point steady-state window
	)
	batches := dataset.Firehose(window+6, perTick, 9, dataset.DefaultFirehoseOptions())
	e := mustEngine(t, Config{Eps: 0.12, MinPts: 8, WindowTicks: window})
	for _, b := range batches[:window] {
		mustTick(t, e, b)
	}
	var inc time.Duration
	for _, b := range batches[window : window+3] {
		st := mustTick(t, e, b)
		inc += st.Elapsed
	}
	snap := e.Snapshot()
	var batch time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := dbscan.Cluster(snap.Points, dbscan.Params{Eps: 0.12, MinPts: 8}, dbscan.IndexGrid); err != nil {
			t.Fatalf("batch recluster: %v", err)
		}
		batch += time.Since(start)
	}
	if inc*2 >= batch {
		t.Fatalf("incremental tick (%v avg) not 2x faster than full recluster (%v avg) at %d points",
			inc/3, batch/3, len(snap.Points))
	}
	t.Logf("window %d points: incremental tick %v vs full recluster %v (%.1fx)",
		len(snap.Points), inc/3, batch/3, float64(batch)/float64(inc))
}

// TestIsomorphic covers the label-isomorphism helper directly.
func TestIsomorphic(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{0, 0, 1, Noise}, []int{1, 1, 0, Noise}, true},
		{[]int{0, 0, 1}, []int{0, 1, 1}, false},         // splits a cluster
		{[]int{0, 1}, []int{0, 0}, false},               // merges clusters
		{[]int{0, Noise}, []int{0, 0}, false},           // noise mismatch
		{[]int{}, []int{}, true},
		{[]int{0}, []int{0, 1}, false},                  // length mismatch
	}
	for i, c := range cases {
		if got := Isomorphic(c.a, c.b); got != c.want {
			t.Fatalf("case %d: Isomorphic(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestDeterministicLabels runs the same sequence twice and requires
// bit-identical labels — the determinism the restart story relies on.
func TestDeterministicLabels(t *testing.T) {
	batches := dataset.Firehose(10, 80, 5, dataset.DefaultFirehoseOptions())
	run := func() []Snapshot {
		e := mustEngine(t, Config{Eps: 0.12, MinPts: 5, WindowTicks: 4})
		var snaps []Snapshot
		for _, b := range batches {
			mustTick(t, e, b)
			snaps = append(snaps, e.Snapshot())
		}
		return snaps
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i].Labels {
			if a[i].Labels[j] != b[i].Labels[j] {
				t.Fatalf("tick %d: nondeterministic label at %v: %d vs %d",
					a[i].Tick, a[i].Points[j], a[i].Labels[j], b[i].Labels[j])
			}
		}
	}
}

// TestRandomizedChurn stresses heavier per-tick churn than the firehose
// generator produces: uniform points in a tight box so nearly every
// cell is dirty every tick.
func TestRandomizedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e := mustEngine(t, Config{Eps: 0.25, MinPts: 4, WindowTicks: 3})
	id := uint64(0)
	for tick := 0; tick < 12; tick++ {
		n := rng.Intn(120)
		batch := make([]geom.Point, n)
		for i := range batch {
			batch[i] = geom.Point{ID: id, X: rng.Float64() * 2, Y: rng.Float64() * 2}
			id++
		}
		mustTick(t, e, batch)
		checkSnapshot(t, e)
	}
}
