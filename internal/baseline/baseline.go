// Package baseline implements the two prior parallel DBSCAN designs the
// paper positions Mr. Scan against (§2.2):
//
//   - PDS: a PDSDBSCAN-style shared disjoint-set algorithm (Patwary et
//     al., SC'12). Workers classify core points and union directly-
//     density-reachable cores in a shared union-find structure. The
//     structure counts accesses, exposing the message growth that limited
//     PDSDBSCAN's scaling beyond 8,192 cores.
//
//   - DBDC: a master/slave design (Januzaj et al., EDBT'04) where slaves
//     cluster disjoint shards with no shadow regions and send a few
//     naively-chosen representatives to a master that merges clusters.
//     Its representative selection "decreased the quality of the
//     clustering output" — reproduced here as the quality-contrast
//     baseline for Figure 11.
package baseline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dbscan"
	"repro/internal/dsu"
	"repro/internal/geom"
	"repro/internal/grid"
)

// PDSResult is the output of the PDS baseline.
type PDSResult struct {
	Labels      []int
	Core        []bool
	NumClusters int
	// Unions and Messages report disjoint-set traffic — the PDSDBSCAN
	// scaling bottleneck ("a large increase in messages sent between
	// cores to access and update the data structure").
	Unions   int64
	Messages int64
}

// PDS runs the PDSDBSCAN-style parallel DBSCAN with the given number of
// workers.
func PDS(pts []geom.Point, params dbscan.Params, workers int) (*PDSResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("baseline: need at least one worker, got %d", workers)
	}
	n := len(pts)
	idx := grid.NewIndex(grid.New(params.Eps), pts)
	core := make([]bool, n)
	minNeighbors := params.MinPts - 1

	// Phase 1: parallel core classification over disjoint ranges.
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			core[i] = idx.CountNeighbors(pts[i], params.Eps, int32(i), minNeighbors) >= minNeighbors
		}
	})

	// Phase 2: parallel unions on the shared disjoint-set structure.
	// Each worker unions its core points with core neighbors; borders
	// attach to the first core neighbor that claims them.
	uf := dsu.NewConcurrent(n)
	owner := make([]int32, n) // border owner: core index + 1, 0 = unclaimed
	parallelRanges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !core[i] {
				continue
			}
			idx.Neighbors(pts[i], params.Eps, int32(i), func(j int32) {
				if core[j] {
					if int(j) > i { // each edge once
						uf.Union(i, int(j))
					}
				} else {
					atomic.CompareAndSwapInt32(&owner[j], 0, int32(i)+1)
				}
			})
		}
	})

	// Label assignment: dense IDs per disjoint set holding a core point.
	labels := make([]int, n)
	ids := make(map[int]int)
	for i := 0; i < n; i++ {
		if core[i] {
			root := uf.Find(i)
			id, ok := ids[root]
			if !ok {
				id = len(ids)
				ids[root] = id
			}
			labels[i] = id
		} else {
			labels[i] = dbscan.Noise
		}
	}
	for i := 0; i < n; i++ {
		if !core[i] && owner[i] != 0 {
			labels[i] = labels[owner[i]-1]
		}
	}
	unions, messages := uf.Stats()
	return &PDSResult{
		Labels:      labels,
		Core:        core,
		NumClusters: len(ids),
		Unions:      unions,
		Messages:    messages,
	}, nil
}

func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(n*w/workers, n*(w+1)/workers)
		}(w)
	}
	wg.Wait()
}

// DBDCOptions tunes the DBDC-style baseline.
type DBDCOptions struct {
	// Slaves is the number of slave shards.
	Slaves int
	// RepsPerCluster is the number of representative points each slave
	// sends the master per local cluster (DBDC used a small sample).
	RepsPerCluster int
}

// DBDCResult is the output of the DBDC baseline.
type DBDCResult struct {
	Labels      []int
	NumClusters int
}

// DBDC runs the master/slave baseline: slaves cluster disjoint x-striped
// shards (no shadow regions — the design's quality flaw), send sampled
// representatives to the master, and the master merges local clusters
// whose representatives are within Eps.
func DBDC(pts []geom.Point, params dbscan.Params, opt DBDCOptions) (*DBDCResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if opt.Slaves < 1 {
		return nil, fmt.Errorf("baseline: need at least one slave, got %d", opt.Slaves)
	}
	if opt.RepsPerCluster < 1 {
		opt.RepsPerCluster = 5
	}
	n := len(pts)
	// Disjoint x-striped distribution ("assumes that the dataset to
	// cluster is already distributed among the compute nodes").
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].X < pts[order[b]].X })
	type shard struct {
		indices []int
		res     *dbscan.Result
	}
	shards := make([]shard, opt.Slaves)
	for s := 0; s < opt.Slaves; s++ {
		lo, hi := n*s/opt.Slaves, n*(s+1)/opt.Slaves
		shards[s].indices = order[lo:hi]
	}
	var wg sync.WaitGroup
	errs := make([]error, opt.Slaves)
	for s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			local := make([]geom.Point, len(shards[s].indices))
			for i, gi := range shards[s].indices {
				local[i] = pts[gi]
			}
			shards[s].res, errs[s] = dbscan.Cluster(local, params, dbscan.IndexGrid)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Representatives: every (size/Reps)-th member of each local cluster
	// — DBDC's naive sampling, not Mr. Scan's geometric anchors.
	type repPoint struct {
		p     geom.Point
		slave int
		local int
	}
	var reps []repPoint
	for s := range shards {
		members := make(map[int][]int)
		for i, l := range shards[s].res.Labels {
			if l >= 0 {
				members[l] = append(members[l], i)
			}
		}
		for l, idxs := range members {
			step := len(idxs) / opt.RepsPerCluster
			if step < 1 {
				step = 1
			}
			for k := 0; k < len(idxs); k += step {
				gi := shards[s].indices[idxs[k]]
				reps = append(reps, repPoint{p: pts[gi], slave: s, local: l})
			}
		}
	}
	// Master merge: single-linkage over representatives within Eps.
	type key struct{ slave, local int }
	uf := dsu.NewKeyed[key]()
	sort.Slice(reps, func(a, b int) bool { return reps[a].p.ID < reps[b].p.ID })
	eps2 := params.Eps * params.Eps
	for i := range reps {
		uf.Add(key{reps[i].slave, reps[i].local})
		for j := i + 1; j < len(reps); j++ {
			if geom.Dist2(reps[i].p, reps[j].p) <= eps2 {
				uf.Union(key{reps[i].slave, reps[i].local}, key{reps[j].slave, reps[j].local})
			}
		}
	}
	// Global labels.
	ids := make(map[key]int)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = dbscan.Noise
	}
	nextID := 0
	for s := range shards {
		for i, l := range shards[s].res.Labels {
			if l < 0 {
				continue
			}
			root := uf.Find(key{s, l})
			id, ok := ids[root]
			if !ok {
				id = nextID
				nextID++
				ids[root] = id
			}
			labels[shards[s].indices[i]] = id
		}
	}
	return &DBDCResult{Labels: labels, NumClusters: nextID}, nil
}
