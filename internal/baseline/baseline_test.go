package baseline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
	"repro/internal/quality"
)

var params = dbscan.Params{Eps: 0.1, MinPts: 40}

func TestPDSMatchesReference(t *testing.T) {
	pts := dataset.Twitter(10000, 1)
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := PDS(pts, params, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != ref.NumClusters {
			t.Errorf("workers=%d: NumClusters = %d, want %d", workers, got.NumClusters, ref.NumClusters)
		}
		for i := range pts {
			if got.Core[i] != ref.Core[i] {
				t.Fatalf("workers=%d: core flag of %d differs", workers, i)
			}
		}
		// Core-point partition must match exactly (union-find over cores
		// is order-independent); borders may differ by claim order.
		score, err := quality.Score(ref.Labels, got.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if score < 0.99 {
			t.Errorf("workers=%d: quality = %.4f, want >= 0.99", workers, score)
		}
	}
}

func TestPDSCorePartitionExact(t *testing.T) {
	pts := dataset.Twitter(5000, 2)
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PDS(pts, params, 8)
	if err != nil {
		t.Fatal(err)
	}
	refToGot := map[int]int{}
	gotToRef := map[int]int{}
	for i := range pts {
		if !ref.Core[i] {
			continue
		}
		r, g := ref.Labels[i], got.Labels[i]
		if prev, ok := refToGot[r]; ok && prev != g {
			t.Fatalf("ref cluster %d split", r)
		}
		if prev, ok := gotToRef[g]; ok && prev != r {
			t.Fatalf("got cluster %d merges two ref clusters", g)
		}
		refToGot[r] = g
		gotToRef[g] = r
	}
}

func TestPDSMessageGrowth(t *testing.T) {
	// The §2.2 observation: disjoint-set traffic grows with the data.
	small, err := PDS(dataset.Twitter(2000, 3), params, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := PDS(dataset.Twitter(8000, 3), params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Messages <= small.Messages {
		t.Errorf("messages must grow with data: %d vs %d", big.Messages, small.Messages)
	}
	if small.Unions == 0 {
		t.Error("expected unions on clustered data")
	}
}

func TestPDSValidation(t *testing.T) {
	if _, err := PDS(nil, dbscan.Params{Eps: 0, MinPts: 1}, 1); err == nil {
		t.Error("bad params must fail")
	}
	if _, err := PDS(nil, params, 0); err == nil {
		t.Error("zero workers must fail")
	}
}

func TestDBDCRunsAndDegradesGracefully(t *testing.T) {
	pts := dataset.Twitter(10000, 4)
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DBDC(pts, params, DBDCOptions{Slaves: 4, RepsPerCluster: 5})
	if err != nil {
		t.Fatal(err)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	// DBDC works, but without shadow regions its quality is visibly
	// below Mr. Scan's 0.995 floor on multi-shard runs.
	if score < 0.5 {
		t.Errorf("quality = %.4f; DBDC should still be broadly correct", score)
	}
	t.Logf("DBDC quality = %.4f (reference for the Figure 11 contrast)", score)
	if res.NumClusters == 0 {
		t.Error("expected clusters")
	}
}

func TestDBDCSingleSlaveNearPerfect(t *testing.T) {
	// With one slave there is no distribution flaw: only border-order
	// effects remain.
	pts := dataset.Twitter(5000, 5)
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DBDC(pts, params, DBDCOptions{Slaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	score, err := quality.Score(ref.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.999 {
		t.Errorf("single-slave quality = %.4f, want ~1", score)
	}
}

func TestDBDCValidation(t *testing.T) {
	if _, err := DBDC(nil, params, DBDCOptions{Slaves: 0}); err == nil {
		t.Error("zero slaves must fail")
	}
	if _, err := DBDC(nil, dbscan.Params{}, DBDCOptions{Slaves: 1}); err == nil {
		t.Error("bad params must fail")
	}
}

func TestPDSEmptyAndTiny(t *testing.T) {
	res, err := PDS(nil, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Error("empty input must produce no clusters")
	}
	res, err = PDS([]geom.Point{{ID: 1}}, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != dbscan.Noise {
		t.Error("single point must be noise")
	}
}
