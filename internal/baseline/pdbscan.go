package baseline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dbscan"
	"repro/internal/dsu"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// PDBSCANResult is the output of the PDBSCAN baseline.
type PDBSCANResult struct {
	Labels      []int
	Core        []bool
	NumClusters int
	// RemoteMessages counts point fetches from other nodes — the cost
	// whose super-linear growth "hampered its scalability" (§2.2).
	RemoteMessages int64
	// MergeEdges counts cross-node cluster merge notifications sent to
	// the master.
	MergeEdges int64
}

// PDBSCAN implements the design of the first parallel DBSCAN (Xu, Jäger
// & Kriegel 1999; paper §2.2): the data is spatially partitioned among
// compute nodes, but the R*-tree index is *replicated on every node* —
// "distributed R*-trees partition data but they replicate the entire
// index on each node. If a neighborhood query included an area of the
// dataset that resides on a different node, the node that started the
// query must send a message to obtain the data."
//
// Three phases, with barriers where the original had communication
// rounds: parallel core classification over owned points, parallel
// expansion collecting union edges (touching a remotely-owned point
// counts one message), and a master round applying the edges.
func PDBSCAN(pts []geom.Point, params dbscan.Params, nodes int) (*PDBSCANResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("baseline: need at least one node, got %d", nodes)
	}
	n := len(pts)
	// Spatial partitioning: x-striped shards of equal point count (the
	// original used the R*-tree directory; stripes preserve the property
	// that matters — most neighbors are local, boundary neighbors are
	// not).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pts[order[a]].X != pts[order[b]].X {
			return pts[order[a]].X < pts[order[b]].X
		}
		return order[a] < order[b]
	})
	owner := make([]int32, n)
	for rank, idx := range order {
		owner[idx] = int32(nodes * rank / n)
	}

	// The replicated index: every node holds the full R*-tree.
	index := rtree.Build(pts)

	core := make([]bool, n)
	minNeighbors := params.MinPts - 1
	var remote atomic.Int64

	// --- Phase 1: parallel core classification of owned points ---
	eachNode(nodes, func(w int) {
		var msgs int64
		for i := 0; i < n; i++ {
			if owner[i] != int32(w) {
				continue
			}
			count := 0
			index.Range(pts[i], params.Eps, int32(i), func(j int32) bool {
				count++
				if owner[j] != int32(w) {
					msgs++ // fetch the remote point
				}
				return count < minNeighbors
			})
			core[i] = count >= minNeighbors
		}
		remote.Add(msgs)
	})

	// --- Phase 2: parallel expansion; nodes collect union edges ---
	type edge struct{ a, b int32 }
	edges := make([][]edge, nodes)
	borderOwner := make([]int32, n) // claiming core index + 1
	eachNode(nodes, func(w int) {
		var msgs int64
		for i := 0; i < n; i++ {
			if owner[i] != int32(w) || !core[i] {
				continue
			}
			index.Range(pts[i], params.Eps, int32(i), func(j int32) bool {
				if owner[j] != int32(w) {
					msgs++ // remote classification lookup
				}
				if core[j] {
					if int(j) > i {
						edges[w] = append(edges[w], edge{int32(i), j})
					}
				} else {
					atomic.CompareAndSwapInt32(&borderOwner[j], 0, int32(i)+1)
				}
				return true
			})
		}
		remote.Add(msgs)
	})

	// --- Phase 3: the master applies union edges ---
	master := dsu.New(n)
	var mergeEdges int64
	for w := range edges {
		for _, e := range edges[w] {
			if owner[e.a] != owner[e.b] {
				mergeEdges++ // a cross-node merge notification
			}
			master.Union(int(e.a), int(e.b))
		}
	}
	labels := make([]int, n)
	ids := make(map[int]int)
	for i := 0; i < n; i++ {
		if core[i] {
			root := master.Find(i)
			id, ok := ids[root]
			if !ok {
				id = len(ids)
				ids[root] = id
			}
			labels[i] = id
		} else {
			labels[i] = dbscan.Noise
		}
	}
	for i := 0; i < n; i++ {
		if !core[i] && borderOwner[i] != 0 {
			labels[i] = labels[borderOwner[i]-1]
		}
	}
	return &PDBSCANResult{
		Labels:         labels,
		Core:           core,
		NumClusters:    len(ids),
		RemoteMessages: remote.Load(),
		MergeEdges:     mergeEdges,
	}, nil
}

func eachNode(nodes int, fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(nodes)
	for w := 0; w < nodes; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
