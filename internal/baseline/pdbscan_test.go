package baseline

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/quality"
)

func TestPDBSCANMatchesReference(t *testing.T) {
	pts := dataset.Twitter(8000, 1)
	ref, err := dbscan.Cluster(pts, params, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 3, 8} {
		got, err := PDBSCAN(pts, params, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != ref.NumClusters {
			t.Errorf("nodes=%d: NumClusters = %d, want %d", nodes, got.NumClusters, ref.NumClusters)
		}
		for i := range pts {
			if got.Core[i] != ref.Core[i] {
				t.Fatalf("nodes=%d: core flag of %d differs", nodes, i)
			}
		}
		score, err := quality.Score(ref.Labels, got.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if score < 0.99 {
			t.Errorf("nodes=%d: quality = %.4f", nodes, score)
		}
	}
}

func TestPDBSCANMessageGrowthWithNodes(t *testing.T) {
	// §2.2: remote accesses grow as the data spreads over more nodes —
	// the replicated-index design's scaling obstacle.
	pts := dataset.Twitter(8000, 2)
	var prev int64 = -1
	for _, nodes := range []int{1, 2, 4, 8, 16} {
		res, err := PDBSCAN(pts, params, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if nodes == 1 && res.RemoteMessages != 0 {
			t.Errorf("single node sent %d remote messages, want 0", res.RemoteMessages)
		}
		if res.RemoteMessages < prev {
			t.Errorf("nodes=%d: messages %d fell below %d at fewer nodes",
				nodes, res.RemoteMessages, prev)
		}
		prev = res.RemoteMessages
	}
}

func TestPDBSCANMessageGrowthWithData(t *testing.T) {
	small, err := PDBSCAN(dataset.Twitter(2000, 3), params, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := PDBSCAN(dataset.Twitter(8000, 3), params, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the data must cost more than 4x the messages in dense geodata
	// (neighborhood sizes grow with density): the super-linear growth
	// the paper reports.
	if big.RemoteMessages <= small.RemoteMessages*4 {
		t.Errorf("messages grew %d -> %d over 4x data; expected super-linear growth",
			small.RemoteMessages, big.RemoteMessages)
	}
}

func TestPDBSCANMergeEdges(t *testing.T) {
	pts := dataset.Twitter(6000, 4)
	res, err := PDBSCAN(pts, params, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeEdges == 0 {
		t.Error("x-striped shards across dense metros must produce cross-node merges")
	}
	single, err := PDBSCAN(pts, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.MergeEdges != 0 {
		t.Errorf("single node has %d cross-node merges, want 0", single.MergeEdges)
	}
}

func TestPDBSCANValidation(t *testing.T) {
	if _, err := PDBSCAN(nil, dbscan.Params{}, 1); err == nil {
		t.Error("bad params must fail")
	}
	if _, err := PDBSCAN(nil, params, 0); err == nil {
		t.Error("zero nodes must fail")
	}
	res, err := PDBSCAN(nil, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Error("empty input must produce no clusters")
	}
}

func BenchmarkPDBSCANNodes(b *testing.B) {
	pts := dataset.Twitter(10000, 5)
	for _, nodes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := PDBSCAN(pts, params, nodes)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.RemoteMessages), "remote-messages")
			}
		})
	}
}
