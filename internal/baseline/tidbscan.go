package baseline

import (
	"sort"

	"repro/internal/dbscan"
	"repro/internal/geom"
)

// TIDBSCAN implements TI-DBSCAN (Kryszkiewicz & Lasek, RSCTC 2010), the
// single-core DBSCAN optimization the paper discusses in §2.2: instead of
// a spatial index, the input is sorted by distance to a reference point,
// and the triangle inequality bounds each point's candidate neighborhood
// to a window of that ordering — "the input dataset is sorted to
// determine a point's Eps-Neighborhood, which is similar to the way our
// GPU implementation of the algorithm uses its KD-tree."
//
// The output is exactly DBSCAN's (same core points, same cluster
// partition); only the candidate pruning differs.
func TIDBSCAN(pts []geom.Point, params dbscan.Params) (*dbscan.Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(pts)
	// Reference point: the corner of the bounding box, as in the paper's
	// formulation (any fixed reference is correct; a corner spreads the
	// projection well for geo data).
	bounds := geom.RectOf(pts)
	ref := geom.Point{X: bounds.MinX, Y: bounds.MinY}
	if n == 0 {
		ref = geom.Point{}
	}

	// Sort indices by distance to the reference.
	order := make([]tiProj, n)
	for i, p := range pts {
		order[i] = tiProj{idx: int32(i), dist: geom.Dist(p, ref)}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].dist != order[b].dist {
			return order[a].dist < order[b].dist
		}
		return order[a].idx < order[b].idx
	})
	// pos[i] is point i's rank in the projection order.
	pos := make([]int32, n)
	for r, pr := range order {
		pos[pr.idx] = int32(r)
	}

	idx := &tiIndex{pts: pts, eps: params.Eps, order: order, pos: pos}
	return tiRun(pts, params, idx), nil
}

// tiIndex prunes neighborhood candidates with the triangle inequality:
// dist(p,q) <= eps implies |dist(p,ref) - dist(q,ref)| <= eps, so only a
// contiguous window of the sorted order needs scanning.
// tiProj is one entry of the projection order: a point index and its
// distance to the reference point.
type tiProj struct {
	idx  int32
	dist float64
}

type tiIndex struct {
	pts   []geom.Point
	eps   float64
	order []tiProj
	pos   []int32
}

func (t *tiIndex) neighbors(i int32, fn func(j int32)) {
	p := t.pts[i]
	eps2 := t.eps * t.eps
	center := int(t.pos[i])
	d := t.order[center].dist
	// Scan backwards while the projected distance stays within eps.
	for r := center - 1; r >= 0 && d-t.order[r].dist <= t.eps; r-- {
		j := t.order[r].idx
		if geom.Dist2(p, t.pts[j]) <= eps2 {
			fn(j)
		}
	}
	for r := center + 1; r < len(t.order) && t.order[r].dist-d <= t.eps; r++ {
		j := t.order[r].idx
		if geom.Dist2(p, t.pts[j]) <= eps2 {
			fn(j)
		}
	}
}

func (t *tiIndex) countAtLeast(i int32, k int) bool {
	if k <= 0 {
		return true
	}
	count := 0
	p := t.pts[i]
	eps2 := t.eps * t.eps
	center := int(t.pos[i])
	d := t.order[center].dist
	for r := center - 1; r >= 0 && d-t.order[r].dist <= t.eps; r-- {
		if geom.Dist2(p, t.pts[t.order[r].idx]) <= eps2 {
			count++
			if count >= k {
				return true
			}
		}
	}
	for r := center + 1; r < len(t.order) && t.order[r].dist-d <= t.eps; r++ {
		if geom.Dist2(p, t.pts[t.order[r].idx]) <= eps2 {
			count++
			if count >= k {
				return true
			}
		}
	}
	return false
}

// tiRun is the standard DBSCAN control loop over the TI index (the same
// expansion semantics as internal/dbscan, reimplemented here against the
// window-pruned candidate generator).
func tiRun(pts []geom.Point, params dbscan.Params, idx *tiIndex) *dbscan.Result {
	n := len(pts)
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	core := make([]bool, n)
	minNeighbors := params.MinPts - 1
	nextCluster := 0
	var queue []int32
	for seed := 0; seed < n; seed++ {
		if labels[seed] != unvisited {
			continue
		}
		if !idx.countAtLeast(int32(seed), minNeighbors) {
			labels[seed] = dbscan.Noise
			continue
		}
		cid := nextCluster
		nextCluster++
		core[seed] = true
		labels[seed] = cid
		queue = queue[:0]
		idx.neighbors(int32(seed), func(j int32) { queue = append(queue, j) })
		for qi := 0; qi < len(queue); qi++ {
			p := queue[qi]
			if labels[p] == dbscan.Noise {
				labels[p] = cid
			}
			if labels[p] != unvisited {
				continue
			}
			labels[p] = cid
			if !idx.countAtLeast(p, minNeighbors) {
				continue
			}
			core[p] = true
			idx.neighbors(p, func(j int32) {
				if labels[j] == unvisited || labels[j] == dbscan.Noise {
					queue = append(queue, j)
				}
			})
		}
	}
	return &dbscan.Result{Labels: labels, Core: core, NumClusters: nextCluster}
}
