package baseline

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dbscan"
	"repro/internal/geom"
)

func TestTIDBSCANMatchesReferenceExactly(t *testing.T) {
	// TI-DBSCAN is an exact DBSCAN: identical labels to the reference
	// (both visit seeds in input order, so even cluster IDs agree).
	for _, seed := range []int64{1, 2, 3} {
		pts := dataset.Twitter(4000, seed)
		ref, err := dbscan.Cluster(pts, params, dbscan.IndexBrute)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TIDBSCAN(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumClusters != ref.NumClusters {
			t.Fatalf("seed %d: NumClusters = %d, want %d", seed, got.NumClusters, ref.NumClusters)
		}
		for i := range pts {
			if got.Labels[i] != ref.Labels[i] {
				t.Fatalf("seed %d: label of %d = %d, want %d", seed, i, got.Labels[i], ref.Labels[i])
			}
			if got.Core[i] != ref.Core[i] {
				t.Fatalf("seed %d: core flag of %d differs", seed, i)
			}
		}
	}
}

func TestTIDBSCANSDSSParams(t *testing.T) {
	pts := dataset.SDSS(3000, 4)
	p := dbscan.Params{Eps: 0.00015, MinPts: 5}
	ref, err := dbscan.Cluster(pts, p, dbscan.IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TIDBSCAN(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != ref.NumClusters {
		t.Fatalf("NumClusters = %d, want %d", got.NumClusters, ref.NumClusters)
	}
	for i := range pts {
		if got.Labels[i] != ref.Labels[i] {
			t.Fatalf("label of %d differs", i)
		}
	}
}

func TestTIDBSCANEdgeCases(t *testing.T) {
	if _, err := TIDBSCAN(nil, dbscan.Params{Eps: 0, MinPts: 1}); err == nil {
		t.Error("bad params must fail")
	}
	res, err := TIDBSCAN(nil, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Error("empty input must yield no clusters")
	}
	res, err = TIDBSCAN([]geom.Point{{ID: 1, X: 5, Y: 5}}, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != dbscan.Noise {
		t.Error("single point must be noise")
	}
	// Duplicate points (zero projected distance spread).
	dup := make([]geom.Point, 50)
	for i := range dup {
		dup[i] = geom.Point{ID: uint64(i), X: 1, Y: 1}
	}
	res, err = TIDBSCAN(dup, dbscan.Params{Eps: 0.1, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("duplicates must form one cluster, got %d", res.NumClusters)
	}
}

func BenchmarkTIDBSCANvsIndexes(b *testing.B) {
	pts := dataset.Twitter(10000, 5)
	b.Run("ti", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := TIDBSCAN(pts, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.Cluster(pts, params, dbscan.IndexKDTree); err != nil {
				b.Fatal(err)
			}
		}
	})
}
