package sweep

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/merge"
	"repro/internal/mrnet"
)

func env(t *testing.T, leaves int) (*mrnet.Network, *lustre.FS) {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	net, err := mrnet.New(leaves, 256, mrnet.CostModel{}, fs.Clock())
	if err != nil {
		t.Fatal(err)
	}
	return net, fs
}

func key(leaf, local int32) merge.ClusterKey { return merge.ClusterKey{Leaf: leaf, Local: local} }

func TestSweepWritesGlobalIDs(t *testing.T) {
	net, fs := env(t, 2)
	mapping := map[merge.ClusterKey]int32{
		key(0, 0): 0,
		key(1, 0): 0, // leaf 1's cluster 0 merged with leaf 0's
		key(1, 1): 1,
	}
	data := []*LeafData{
		{
			Points: []geom.Point{{ID: 10, X: 1}, {ID: 11, X: 2}},
			Labels: []int32{0, -1},
		},
		{
			Points: []geom.Point{{ID: 20, X: 3}, {ID: 21, X: 4}},
			Labels: []int32{0, 1},
		},
	}
	res, err := Run(context.Background(), net, fs, "out.mrsl", mapping,
		func(leaf int) (*LeafData, error) { return data[leaf], nil },
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsWritten != 3 || res.NoiseSkipped != 1 {
		t.Errorf("written/skipped = %d/%d, want 3/1", res.PointsWritten, res.NoiseSkipped)
	}
	out, err := ReadOutput(fs, "out.mrsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("output holds %d records, want 3", len(out))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Point.ID < out[b].Point.ID })
	if out[0].Point.ID != 10 || out[0].Cluster != 0 {
		t.Errorf("record 0 = %+v", out[0])
	}
	if out[1].Point.ID != 20 || out[1].Cluster != 0 {
		t.Errorf("merged cluster must share the global ID: %+v", out[1])
	}
	if out[2].Point.ID != 21 || out[2].Cluster != 1 {
		t.Errorf("record 2 = %+v", out[2])
	}
}

func TestSweepIncludeNoise(t *testing.T) {
	net, fs := env(t, 1)
	data := &LeafData{
		Points: []geom.Point{{ID: 1}, {ID: 2}},
		Labels: []int32{-1, -1},
	}
	res, err := Run(context.Background(), net, fs, "out.mrsl", map[merge.ClusterKey]int32{},
		func(int) (*LeafData, error) { return data, nil },
		Options{IncludeNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsWritten != 2 || res.NoiseSkipped != 0 {
		t.Errorf("written/skipped = %d/%d, want 2/0", res.PointsWritten, res.NoiseSkipped)
	}
	out, err := ReadOutput(fs, "out.mrsl")
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range out {
		if lp.Cluster != NoiseID {
			t.Errorf("noise point %d written with cluster %d", lp.Point.ID, lp.Cluster)
		}
	}
}

func TestSweepMissingMapping(t *testing.T) {
	net, fs := env(t, 1)
	data := &LeafData{Points: []geom.Point{{ID: 1}}, Labels: []int32{0}}
	_, err := Run(context.Background(), net, fs, "out.mrsl", map[merge.ClusterKey]int32{},
		func(int) (*LeafData, error) { return data, nil }, Options{})
	if err == nil {
		t.Error("missing mapping entry must fail")
	}
}

func TestSweepLeafError(t *testing.T) {
	net, fs := env(t, 4)
	boom := errors.New("leaf data unavailable")
	_, err := Run(context.Background(), net, fs, "out.mrsl", nil,
		func(leaf int) (*LeafData, error) {
			if leaf == 2 {
				return nil, boom
			}
			return &LeafData{}, nil
		}, Options{})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped leaf error", err)
	}
}

func TestSweepMismatchedLabels(t *testing.T) {
	net, fs := env(t, 1)
	data := &LeafData{Points: []geom.Point{{ID: 1}}, Labels: []int32{0, 1}}
	_, err := Run(context.Background(), net, fs, "out.mrsl", nil,
		func(int) (*LeafData, error) { return data, nil }, Options{})
	if err == nil {
		t.Error("mismatched points/labels must fail")
	}
}

func TestSweepManyLeavesDisjointOffsets(t *testing.T) {
	const leaves = 16
	net, fs := env(t, leaves)
	mapping := map[merge.ClusterKey]int32{}
	for l := int32(0); l < leaves; l++ {
		mapping[key(l, 0)] = l
	}
	res, err := Run(context.Background(), net, fs, "out.mrsl", mapping,
		func(leaf int) (*LeafData, error) {
			pts := make([]geom.Point, leaf+1) // varying sizes
			labels := make([]int32, leaf+1)
			for i := range pts {
				pts[i] = geom.Point{ID: uint64(leaf*100 + i)}
			}
			return &LeafData{Points: pts, Labels: labels}, nil
		}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(leaves * (leaves + 1) / 2)
	if res.PointsWritten != want {
		t.Fatalf("PointsWritten = %d, want %d", res.PointsWritten, want)
	}
	out, err := ReadOutput(fs, "out.mrsl")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, lp := range out {
		if seen[lp.Point.ID] {
			t.Fatalf("point %d written twice (offset collision)", lp.Point.ID)
		}
		seen[lp.Point.ID] = true
		if int64(lp.Point.ID/100) != lp.Cluster {
			t.Fatalf("point %d has cluster %d, want %d", lp.Point.ID, lp.Cluster, lp.Point.ID/100)
		}
	}
	if int64(len(seen)) != want {
		t.Fatalf("output holds %d distinct points, want %d", len(seen), want)
	}
}

func TestReadOutputEmpty(t *testing.T) {
	fs := lustre.New(lustre.Titan(), nil)
	fs.Create("empty.mrsl")
	out, err := ReadOutput(fs, "empty.mrsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty file produced %d records", len(out))
	}
	if _, err := ReadOutput(fs, "missing"); err == nil {
		t.Error("missing file must fail")
	}
}
