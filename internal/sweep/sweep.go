// Package sweep implements Mr. Scan's final phase (paper §3.4): writing
// the finished clusters to the file system.
//
// The root computes per-leaf file offsets, the global cluster ID mapping
// travels down the tree "with each level of the tree reversing the merge
// operation", and each leaf relabels its partition's points with their
// global cluster IDs and writes them to the output file in parallel.
//
// Only owned (non-shadow) points are written: each point is owned by
// exactly one partition, which deduplicates the shadow copies naturally.
package sweep

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/merge"
	"repro/internal/mrnet"
	"repro/internal/ptio"
)

// NoiseID is the cluster ID written for noise points when they are
// included in the output.
const NoiseID int64 = -1

// LeafData is one leaf's sweep input: its owned points and their
// leaf-local cluster labels (negative = noise).
type LeafData struct {
	Points []geom.Point
	Labels []int32
}

// Result reports what the sweep wrote.
type Result struct {
	// PointsWritten counts output records.
	PointsWritten int64
	// NoiseSkipped counts noise points omitted (IncludeNoise false).
	NoiseSkipped int64
	// Elapsed is the phase's wall time.
	Elapsed time.Duration
}

// Options configures the sweep.
type Options struct {
	// IncludeNoise writes noise points with cluster ID NoiseID instead of
	// omitting them. The paper writes "a file of the points included in a
	// cluster", i.e. omits noise; keeping it is useful for analysis.
	IncludeNoise bool
	// Claims carries border-reclaim information (merge.BorderClaims):
	// an owned point labeled noise locally whose ID appears here is
	// written as a border member of the claimed global cluster instead.
	Claims map[uint64]int32
}

// Run executes the sweep over the cluster-phase tree. mapping is the
// root's global ID assignment (merge.AssignGlobalIDs); data returns each
// leaf's owned points and labels (already in leaf memory after the
// cluster phase).
func Run(ctx context.Context, net *mrnet.Network, fs *lustre.FS, outFile string, mapping map[merge.ClusterKey]int32, data func(leaf int) (*LeafData, error), opt Options) (*Result, error) {
	start := time.Now()
	leaves := net.NumLeaves()

	// Leaves report output record counts; the root computes offsets
	// ("It first calculates file offsets to be used by the leaf nodes to
	// write out the points for each cluster").
	leafData := make([]*LeafData, leaves)
	counts, err := mrnet.Reduce(ctx, net,
		func(leaf int) ([]int64, error) {
			d, err := data(leaf)
			if err != nil {
				return nil, err
			}
			if len(d.Points) != len(d.Labels) {
				return nil, fmt.Errorf("sweep: leaf %d has %d points, %d labels", leaf, len(d.Points), len(d.Labels))
			}
			leafData[leaf] = d
			var n int64
			for i, l := range d.Labels {
				if l >= 0 || opt.IncludeNoise {
					n++
					continue
				}
				if _, claimed := opt.Claims[d.Points[i].ID]; claimed {
					n++
				}
			}
			return []int64{n}, nil
		},
		func(_ *mrnet.Node, parts [][]int64) ([]int64, error) {
			var out []int64
			for _, p := range parts {
				out = append(out, p...)
			}
			return out, nil
		},
		func(cs []int64) int64 { return int64(len(cs)) * 8 },
	)
	if err != nil {
		return nil, err
	}
	// Records start after the 16-byte MRSL header the root writes.
	const headerSize = 16
	offsets := make([]int64, leaves)
	cursor := int64(headerSize)
	var totalRecords int64
	for l, n := range counts {
		offsets[l] = cursor
		cursor += n * ptio.LabeledRecordSize
		totalRecords += n
	}

	// Multicast the mapping and per-leaf offsets down the tree; leaves
	// relabel and write in parallel.
	type payload struct {
		mapping map[merge.ClusterKey]int32
		offsets []int64
	}
	root := fs.Create(outFile)
	if _, err := root.WriteAt(ptio.LabeledHeader(totalRecords), 0); err != nil {
		return nil, fmt.Errorf("sweep: writing header: %w", err)
	}
	var written, skipped int64
	writtenPerLeaf := make([]int64, leaves)
	skippedPerLeaf := make([]int64, leaves)
	err = mrnet.Multicast(ctx, net, payload{mapping: mapping, offsets: offsets},
		nil,
		func(leaf int, pl payload) error {
			d := leafData[leaf]
			h := fs.OpenOrCreate(outFile)
			buf := make([]byte, 0, 1<<16)
			off := pl.offsets[leaf]
			flush := func() error {
				if len(buf) == 0 {
					return nil
				}
				if _, err := h.WriteAt(buf, off); err != nil {
					return err
				}
				off += int64(len(buf))
				buf = buf[:0]
				return nil
			}
			for i, p := range d.Points {
				var cluster int64
				if l := d.Labels[i]; l >= 0 {
					gid, ok := pl.mapping[merge.ClusterKey{Leaf: int32(leaf), Local: l}]
					if !ok {
						return fmt.Errorf("sweep: leaf %d cluster %d missing from global mapping", leaf, l)
					}
					cluster = int64(gid)
				} else if gid, claimed := opt.Claims[p.ID]; claimed {
					// Border reclaim: another leaf saw this point within
					// Eps of one of its core points.
					cluster = int64(gid)
				} else if opt.IncludeNoise {
					cluster = NoiseID
				} else {
					skippedPerLeaf[leaf]++
					continue
				}
				buf = ptio.AppendLabeled(buf, ptio.LabeledPoint{Point: p, Cluster: cluster})
				writtenPerLeaf[leaf]++
				if len(buf) >= 1<<16 {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return flush()
		},
		func(pl payload) int64 { return int64(len(pl.mapping))*12 + int64(len(pl.offsets))*8 },
	)
	if err != nil {
		return nil, err
	}
	for l := range writtenPerLeaf {
		written += writtenPerLeaf[l]
		skipped += skippedPerLeaf[l]
	}
	return &Result{
		PointsWritten: written,
		NoiseSkipped:  skipped,
		Elapsed:       time.Since(start),
	}, nil
}

// ReadOutput loads every labeled record from a sweep output file (an
// MRSL file: header plus records). An empty file reads as no records.
func ReadOutput(fs *lustre.FS, file string) ([]ptio.LabeledPoint, error) {
	h, err := fs.Open(file)
	if err != nil {
		return nil, err
	}
	if h.Size() == 0 {
		return nil, nil
	}
	return ptio.ReadLabeled(h)
}
