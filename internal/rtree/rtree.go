// Package rtree implements an R*-tree (Beckmann, Kriegel, Schneider &
// Seeger, SIGMOD'90) over 2D points.
//
// The paper positions the R*-tree as the spatial index "typically used in
// a CPU implementation of DBSCAN" (§3.2.1) — and the index PDBSCAN
// distributed across compute nodes (§2.2). This implementation provides
// the classic insertion algorithm: ChooseSubtree by minimum overlap /
// area enlargement, the R* split (axis by minimum margin sum,
// distribution by minimum overlap), and one round of forced reinsertion
// per level, which is the R*-tree's signature optimization.
//
// It backs the reference DBSCAN's IndexRTree option and the PDBSCAN
// baseline's replicated index.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

const (
	// MaxEntries is M, the node capacity.
	MaxEntries = 16
	// MinEntries is m ≈ 40% of M, the R*-tree recommendation.
	MinEntries = 6
	// reinsertCount is p ≈ 30% of M entries reinserted on first overflow.
	reinsertCount = 5
)

// entry is one slot of a node: either a child node (internal) or a point
// (leaf).
type entry struct {
	bounds geom.Rect
	child  *node
	point  geom.Point
	idx    int32 // point index for leaf entries
}

type node struct {
	leaf    bool
	level   int // 0 at leaves
	entries []entry
}

func (n *node) bounds() geom.Rect {
	r := geom.EmptyRect()
	for _, e := range n.entries {
		r = r.Union(e.bounds)
	}
	return r
}

// Tree is an R*-tree over points. The zero value is an empty tree ready
// for insertion.
type Tree struct {
	root *node
	size int
	// reinserted[level] guards one forced-reinsert round per level per
	// insertion, as the R* algorithm prescribes.
	reinserted map[int]bool
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Build bulk-constructs a tree by inserting pts in order.
func Build(pts []geom.Point) *Tree {
	t := New()
	for i, p := range pts {
		t.Insert(p, int32(i))
	}
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a root-only tree).
func (t *Tree) Height() int { return t.root.level + 1 }

// Insert adds a point with an external index.
func (t *Tree) Insert(p geom.Point, idx int32) {
	t.reinserted = map[int]bool{}
	t.insertEntry(entry{
		bounds: geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y},
		point:  p,
		idx:    idx,
	}, 0)
	t.size++
}

// insertEntry places e at the given level (0 = leaf level).
func (t *Tree) insertEntry(e entry, level int) {
	leafPath := t.choosePath(e.bounds, level)
	target := leafPath[len(leafPath)-1]
	target.entries = append(target.entries, e)
	t.handleOverflow(leafPath)
}

// choosePath descends from the root to the node at `level`, choosing
// subtrees per R*: minimum overlap enlargement when the children are
// leaves, minimum area enlargement otherwise.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	childrenAreLeaves := n.level == 1
	best := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		union := e.bounds.Union(r)
		enlarge := area(union) - area(e.bounds)
		var overlap float64
		if childrenAreLeaves {
			// Overlap enlargement against siblings.
			for j, o := range n.entries {
				if i == j {
					continue
				}
				overlap += intersectionArea(union, o.bounds) - intersectionArea(e.bounds, o.bounds)
			}
		}
		a := area(e.bounds)
		better := false
		switch {
		case childrenAreLeaves && overlap != bestOverlap:
			better = overlap < bestOverlap
		case enlarge != bestEnlarge:
			better = enlarge < bestEnlarge
		default:
			better = a < bestArea
		}
		if i == 0 || better {
			best = i
			bestOverlap = overlap
			bestEnlarge = enlarge
			bestArea = a
		}
	}
	return best
}

// handleOverflow walks the insertion path bottom-up, applying forced
// reinsertion (once per level) or the R* split to overflowing nodes.
func (t *Tree) handleOverflow(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= MaxEntries {
			t.refreshBounds(path[:i+1])
			continue
		}
		if i > 0 && !t.reinserted[n.level] {
			t.reinserted[n.level] = true
			t.reinsert(n, path[:i])
			continue
		}
		nn := split(n)
		if i == 0 {
			// Root split: grow the tree.
			newRoot := &node{level: n.level + 1}
			newRoot.entries = []entry{
				{bounds: n.bounds(), child: n},
				{bounds: nn.bounds(), child: nn},
			}
			t.root = newRoot
			return
		}
		parent := path[i-1]
		// Update n's entry bounds and add the new sibling.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j].bounds = n.bounds()
				break
			}
		}
		parent.entries = append(parent.entries, entry{bounds: nn.bounds(), child: nn})
	}
}

// refreshBounds tightens the parent entries along the path.
func (t *Tree) refreshBounds(path []*node) {
	for i := len(path) - 1; i >= 1; i-- {
		child := path[i]
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].bounds = child.bounds()
				break
			}
		}
	}
}

// reinsert removes the p entries farthest from the node's center and
// reinserts them (the R* forced reinsertion).
func (t *Tree) reinsert(n *node, ancestors []*node) {
	b := n.bounds()
	cx := (b.MinX + b.MaxX) / 2
	cy := (b.MinY + b.MaxY) / 2
	sort.Slice(n.entries, func(a, b int) bool {
		return centerDist2(n.entries[a].bounds, cx, cy) < centerDist2(n.entries[b].bounds, cx, cy)
	})
	cut := len(n.entries) - reinsertCount
	removed := append([]entry(nil), n.entries[cut:]...)
	n.entries = n.entries[:cut]
	t.refreshBounds(append(append([]*node(nil), ancestors...), n))
	for _, e := range removed {
		t.insertEntry(e, n.level)
	}
}

func centerDist2(r geom.Rect, cx, cy float64) float64 {
	dx := (r.MinX+r.MaxX)/2 - cx
	dy := (r.MinY+r.MaxY)/2 - cy
	return dx*dx + dy*dy
}

// split performs the R* split: choose the axis with the minimum margin
// sum over all distributions, then the distribution with minimum overlap
// (ties by minimum total area). Returns the new right sibling.
func split(n *node) *node {
	type distribution struct {
		left, right geom.Rect
		k           int
	}
	bestFor := func(byX bool) (margin float64, dists []distribution, order []entry) {
		es := append([]entry(nil), n.entries...)
		sort.Slice(es, func(a, b int) bool {
			if byX {
				if es[a].bounds.MinX != es[b].bounds.MinX {
					return es[a].bounds.MinX < es[b].bounds.MinX
				}
				return es[a].bounds.MaxX < es[b].bounds.MaxX
			}
			if es[a].bounds.MinY != es[b].bounds.MinY {
				return es[a].bounds.MinY < es[b].bounds.MinY
			}
			return es[a].bounds.MaxY < es[b].bounds.MaxY
		})
		prefix := make([]geom.Rect, len(es)+1)
		prefix[0] = geom.EmptyRect()
		for i, e := range es {
			prefix[i+1] = prefix[i].Union(e.bounds)
		}
		suffix := make([]geom.Rect, len(es)+1)
		suffix[len(es)] = geom.EmptyRect()
		for i := len(es) - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(es[i].bounds)
		}
		for k := MinEntries; k <= len(es)-MinEntries; k++ {
			l, r := prefix[k], suffix[k]
			margin += marginOf(l) + marginOf(r)
			dists = append(dists, distribution{left: l, right: r, k: k})
		}
		return margin, dists, es
	}
	mx, dx, ox := bestFor(true)
	my, dy, oy := bestFor(false)
	dists, order := dx, ox
	if my < mx {
		dists, order = dy, oy
	}
	bestK := dists[0].k
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for _, d := range dists {
		ov := intersectionArea(d.left, d.right)
		ar := area(d.left) + area(d.right)
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = d.k, ov, ar
		}
	}
	n.entries = append(n.entries[:0], order[:bestK]...)
	return &node{
		leaf:    n.leaf,
		level:   n.level,
		entries: append([]entry(nil), order[bestK:]...),
	}
}

func area(r geom.Rect) float64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

func marginOf(r geom.Rect) float64 {
	if r.Empty() {
		return 0
	}
	return 2 * (r.Width() + r.Height())
}

func intersectionArea(a, b geom.Rect) float64 {
	w := math.Min(a.MaxX, b.MaxX) - math.Max(a.MinX, b.MinX)
	h := math.Min(a.MaxY, b.MaxY) - math.Max(a.MinY, b.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Range invokes fn with the index of every point within eps of center,
// excluding index self (pass negative to include all). fn returning
// false stops the search.
func (t *Tree) Range(center geom.Point, eps float64, self int32, fn func(i int32) bool) {
	eps2 := eps * eps
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := range n.entries {
			e := &n.entries[i]
			if e.bounds.Dist2ToPoint(center) > eps2 {
				continue
			}
			if n.leaf {
				if e.idx == self {
					continue
				}
				if geom.Dist2(center, e.point) <= eps2 {
					if !fn(e.idx) {
						return
					}
				}
			} else {
				stack = append(stack, e.child)
			}
		}
	}
}

// CountRange counts points within eps of center (excluding self),
// stopping at limit (<= 0 counts all).
func (t *Tree) CountRange(center geom.Point, eps float64, self int32, limit int) int {
	count := 0
	t.Range(center, eps, self, func(int32) bool {
		count++
		return limit <= 0 || count < limit
	})
	return count
}

// SearchRect invokes fn for every point inside r.
func (t *Tree) SearchRect(r geom.Rect, fn func(i int32) bool) {
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := range n.entries {
			e := &n.entries[i]
			if !r.Intersects(e.bounds) {
				continue
			}
			if n.leaf {
				if r.Contains(e.point) {
					if !fn(e.idx) {
						return
					}
				}
			} else {
				stack = append(stack, e.child)
			}
		}
	}
}

// CheckInvariants verifies the structural R-tree invariants; it is meant
// for tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if !isRoot && (len(n.entries) < MinEntries || len(n.entries) > MaxEntries) {
			return fmt.Errorf("rtree: node at level %d has %d entries (want %d..%d)",
				n.level, len(n.entries), MinEntries, MaxEntries)
		}
		if len(n.entries) > MaxEntries {
			return fmt.Errorf("rtree: root has %d entries (> %d)", len(n.entries), MaxEntries)
		}
		if n.leaf {
			if n.level != 0 {
				return fmt.Errorf("rtree: leaf at level %d", n.level)
			}
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry without child")
			}
			if e.child.level != n.level-1 {
				return fmt.Errorf("rtree: child level %d under level %d", e.child.level, n.level)
			}
			cb := e.child.bounds()
			if !containsRect(e.bounds, cb) {
				return fmt.Errorf("rtree: entry bounds %+v do not contain child bounds %+v", e.bounds, cb)
			}
			if err := walk(e.child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: tree holds %d points, size says %d", count, t.size)
	}
	return nil
}

func containsRect(outer, inner geom.Rect) bool {
	if inner.Empty() {
		return true
	}
	const slack = 1e-12
	return outer.MinX <= inner.MinX+slack && outer.MinY <= inner.MinY+slack &&
		outer.MaxX >= inner.MaxX-slack && outer.MaxY >= inner.MaxY-slack
}
