package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n int, scale float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return pts
}

func bruteRange(pts []geom.Point, center geom.Point, eps float64, self int32) map[int32]bool {
	want := map[int32]bool{}
	for j := range pts {
		if int32(j) == self {
			continue
		}
		if geom.Dist2(center, pts[j]) <= eps*eps {
			want[int32(j)] = true
		}
	}
	return want
}

func TestEmptyAndSmall(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	tr.Range(geom.Point{}, 1, -1, func(int32) bool {
		t.Fatal("empty tree returned a point")
		return true
	})
	tr.Insert(geom.Point{X: 1, Y: 2}, 0)
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.CountRange(geom.Point{X: 1, Y: 2}, 0.1, -1, 0); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInvariantsUnderGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	pts := randomPoints(rng, 3000, 10)
	for i, p := range pts {
		tr.Insert(p, int32(i))
		if i%251 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Errorf("3000 points with M=16 must build height >= 3, got %d", tr.Height())
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 100, 1500} {
		pts := randomPoints(rng, n, 1)
		tr := Build(pts)
		for trial := 0; trial < 25; trial++ {
			center := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			eps := rng.Float64() * 0.3
			got := map[int32]bool{}
			tr.Range(center, eps, -1, func(i int32) bool { got[i] = true; return true })
			want := bruteRange(pts, center, eps, -1)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d results, want %d", n, len(got), len(want))
			}
			for i := range want {
				if !got[i] {
					t.Fatalf("n=%d: missing %d", n, i)
				}
			}
		}
	}
}

func TestRangeSelfAndEarlyStop(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.01, Y: 0}, {X: 0.02, Y: 0}}
	tr := Build(pts)
	tr.Range(pts[0], 1, 0, func(i int32) bool {
		if i == 0 {
			t.Fatal("self returned")
		}
		return true
	})
	calls := 0
	tr.Range(pts[0], 1, -1, func(int32) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop made %d calls", calls)
	}
	if got := tr.CountRange(pts[0], 1, 0, 1); got != 1 {
		t.Errorf("limited count = %d", got)
	}
}

func TestSearchRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 800, 10)
	tr := Build(pts)
	r := geom.Rect{MinX: 2, MinY: 3, MaxX: 5, MaxY: 7}
	got := map[int32]bool{}
	tr.SearchRect(r, func(i int32) bool { got[i] = true; return true })
	for i, p := range pts {
		if r.Contains(p) != got[int32(i)] {
			t.Fatalf("point %d containment mismatch", i)
		}
	}
}

func TestDuplicatesAndCollinear(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert(geom.Point{X: 5, Y: 5}, int32(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.CountRange(geom.Point{X: 5, Y: 5}, 0.01, -1, 0); got != 200 {
		t.Errorf("duplicate count = %d", got)
	}
	tr2 := New()
	for i := 0; i < 300; i++ {
		tr2.Insert(geom.Point{X: float64(i), Y: 0}, int32(i))
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr2.CountRange(geom.Point{X: 100, Y: 0}, 2.5, -1, 0); got != 5 {
		t.Errorf("collinear count = %d, want 5", got)
	}
}

func TestRangeProperty(t *testing.T) {
	f := func(coords []int8, epsRaw uint8) bool {
		pts := make([]geom.Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, geom.Point{
				ID: uint64(i / 2),
				X:  float64(coords[i]) / 16,
				Y:  float64(coords[i+1]) / 16,
			})
		}
		if len(pts) == 0 {
			return true
		}
		tr := Build(pts)
		if tr.CheckInvariants() != nil {
			return false
		}
		eps := float64(epsRaw)/64 + 0.01
		got := 0
		tr.Range(pts[0], eps, -1, func(int32) bool { got++; return true })
		return got == len(bruteRange(pts, pts[0], eps, -1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkRange(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 50000, 1)
	tr := Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountRange(pts[i%len(pts)], 0.01, int32(i%len(pts)), 0)
	}
}
