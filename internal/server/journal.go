package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/ptio"
)

// The job journal is what makes drain honest: an admitted job's spec
// and input become durable before Submit returns its ID, its state file
// tracks every transition, and its checkpoint directory holds the
// pipeline snapshots staged out at suspension. A server restarted on
// the same directory re-admits every job whose state is non-terminal —
// so the overload invariant ("every admitted job terminates as
// completed, failed-loudly, or resumed") survives process death.
//
// Layout under StateDir:
//
//	jobs/<id>/spec.json   submission parameters (+ degraded decision)
//	jobs/<id>/input.mrsc  the full input dataset
//	jobs/<id>/state       current State, written atomically
//	jobs/<id>/ckpt/       staged pipeline checkpoints (mrscan.StageStateOut)

// persistedSpec is the on-disk form of a job's parameters. The degraded
// decision is persisted so a resumed job regenerates the same
// subsample (same seed = job ID) and thus the same checkpoint
// fingerprint as its first attempt.
type persistedSpec struct {
	Tenant     string  `json:"tenant"`
	Eps        float64 `json:"eps"`
	MinPts     int     `json:"min_pts"`
	Leaves     int     `json:"leaves"`
	DeadlineNS int64   `json:"deadline_ns,omitempty"`
	NoDegrade  bool    `json:"no_degrade,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	SampleRate float64 `json:"sample_rate,omitempty"`
}

// recoveredJob is one non-terminal job found at startup.
type recoveredJob struct {
	id     string
	spec   persistedSpec
	points []geom.Point
}

// journal persists jobs under dir; the zero value (empty dir) disables
// durability and every method becomes a no-op.
type journal struct {
	dir string
}

func (j journal) enabled() bool { return j.dir != "" }

func (j journal) jobDir(id string) string  { return filepath.Join(j.dir, "jobs", id) }
func (j journal) ckptDir(id string) string { return filepath.Join(j.jobDir(id), "ckpt") }

// writeSpec makes an admitted job durable: spec.json, the input
// dataset, and an initial "queued" state file.
func (j journal) writeSpec(id string, spec persistedSpec, pts []geom.Point) error {
	if !j.enabled() {
		return nil
	}
	dir := j.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), b, 0o644); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ptio.WriteDataset(&buf, pts, false); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "input.mrsc"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	return j.setState(id, string(StateQueued))
}

// setState records the job's state transition atomically (tmp +
// rename), so a crash mid-write can never leave a corrupt state file.
func (j journal) setState(id, state string) error {
	if !j.enabled() {
		return nil
	}
	path := filepath.Join(j.jobDir(id), "state")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(state+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recoverJobs scans the journal for jobs a previous instance left in a
// non-terminal state (queued, running, suspended) and loads them for
// re-admission, plus the highest job sequence number seen anywhere so
// new IDs never collide with journaled ones. Jobs are returned in ID
// order, which is submission order.
func (j journal) recoverJobs() ([]recoveredJob, int, error) {
	if !j.enabled() {
		return nil, 0, nil
	}
	entries, err := os.ReadDir(filepath.Join(j.dir, "jobs"))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var out []recoveredJob
	maxSeq := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if n, ok := jobSeq(id); ok && n > maxSeq {
			maxSeq = n
		}
		raw, err := os.ReadFile(filepath.Join(j.jobDir(id), "state"))
		if err != nil {
			continue // half-written job: never fully admitted, skip
		}
		state := State(strings.TrimSpace(string(raw)))
		if state == StateCompleted || state == StateFailed {
			continue
		}
		var spec persistedSpec
		sb, err := os.ReadFile(filepath.Join(j.jobDir(id), "spec.json"))
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s: %w", id, err)
		}
		if err := json.Unmarshal(sb, &spec); err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s: %w", id, err)
		}
		in, err := os.Open(filepath.Join(j.jobDir(id), "input.mrsc"))
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s: %w", id, err)
		}
		pts, err := ptio.ReadDataset(in)
		in.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s input: %w", id, err)
		}
		out = append(out, recoveredJob{id: id, spec: spec, points: pts})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out, maxSeq, nil
}

// jobSeq extracts the numeric sequence from a "job-000042" ID.
func jobSeq(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil {
		return 0, false
	}
	return n, true
}
