package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/integrity"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// The job journal is what makes drain and restart honest: an admitted
// job's spec and input become durable — fsynced, not merely written —
// before Submit returns its ID, every state transition is a CRC-framed
// record appended (and fsynced) to a write-ahead log, and its
// checkpoint directory holds the pipeline snapshots staged out at
// suspension. A server restarted on the same directory replays the log
// and re-admits every job whose last record is non-terminal, so the
// overload invariant ("every admitted job terminates as completed,
// failed-loudly, or resumed") survives not just process death but
// power failure.
//
// Layout under StateDir:
//
//	journal.log           append-only state records (see record framing)
//	jobs/<id>/spec.json   submission parameters (+ degraded decision)
//	jobs/<id>/input.mrsc  the full input dataset
//	jobs/<id>/ckpt/       staged pipeline checkpoints
//
// Sync-ordering invariant (writeSpec): spec.json and input.mrsc are
// written and fsynced, their directories are synced, and only then is
// the "queued" record appended and fsynced. When Submit returns, the
// queued record is durable, and the record being durable implies the
// spec and input it points at are too. Crash replay therefore never
// finds a record without its files; job directories *without* a record
// (the crash hit mid-writeSpec, before the ack) are skipped — the
// caller never learned the ID, so nothing was lost.
//
// Torn-tail policy (replay): the final record of the log may be torn
// by a crash mid-append — that is expected, not corruption. Replay
// truncates it (crash-safely: repaired log to a tmp name, fsync,
// rename, dir sync) and continues, counting
// server_journal_torn_tail_total. A damaged record with a valid record
// *after* it cannot be explained by a torn append, so replay fails
// loudly with ErrJournalCorrupt rather than silently dropping
// acknowledged transitions.

// ErrJournalCorrupt reports a damaged interior journal record — data
// loss that a torn final append cannot explain. The server refuses to
// start on such a journal rather than guess.
var ErrJournalCorrupt = errors.New("server: journal corrupt")

// Journal record framing: magic "JL", a version byte, little-endian
// payload length and CRC32C, then a JSON payload.
const (
	recVersion    = 1
	recHeaderSize = 2 + 1 + 4 + 4
	maxRecordSize = 1 << 20
)

// logRecord is one journaled state transition.
type logRecord struct {
	Seq   int64  `json:"seq"`
	ID    string `json:"id"`
	State string `json:"state"`
}

// persistedSpec is the on-disk form of a job's parameters. The degraded
// decision is persisted so a resumed job regenerates the same
// subsample (same seed = job ID) and thus the same checkpoint
// fingerprint as its first attempt.
type persistedSpec struct {
	Tenant     string  `json:"tenant"`
	Eps        float64 `json:"eps"`
	MinPts     int     `json:"min_pts"`
	Leaves     int     `json:"leaves"`
	DeadlineNS int64   `json:"deadline_ns,omitempty"`
	NoDegrade  bool    `json:"no_degrade,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	SampleRate float64 `json:"sample_rate,omitempty"`
}

// recoveredJob is one non-terminal job found at startup.
type recoveredJob struct {
	id     string
	spec   persistedSpec
	points []geom.Point
}

// journal persists jobs under dir on a JournalFS; an empty dir
// disables durability and every method becomes a no-op.
type journal struct {
	fs  JournalFS
	dir string
	hub *telemetry.Hub

	mu         sync.Mutex // serializes appends and seq
	seq        int64
	rootSynced bool
}

func newJournal(fs JournalFS, dir string, hub *telemetry.Hub) *journal {
	if fs == nil {
		fs = osJournalFS{}
	}
	return &journal{fs: fs, dir: dir, hub: hub}
}

func (j *journal) enabled() bool { return j.dir != "" }

func (j *journal) logPath() string          { return path.Join(j.dir, "journal.log") }
func (j *journal) jobsDir() string          { return path.Join(j.dir, "jobs") }
func (j *journal) jobDir(id string) string  { return path.Join(j.jobsDir(), id) }
func (j *journal) ckptDir(id string) string { return path.Join(j.jobDir(id), "ckpt") }

// isNotExist matches missing files from either JournalFS backend.
func isNotExist(err error) bool {
	return errors.Is(err, os.ErrNotExist) || errors.Is(err, lustre.ErrNotExist)
}

// writeSpec makes an admitted job durable: spec.json and the input
// dataset fsynced, their directory entries synced, then the initial
// "queued" record appended to the log and fsynced — in that order, so
// the ack (the record) is durable only after everything it implies.
func (j *journal) writeSpec(id string, spec persistedSpec, pts []geom.Point) error {
	if !j.enabled() {
		return nil
	}
	dir := j.jobDir(id)
	if err := j.fs.MkdirAll(dir); err != nil {
		return err
	}
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := j.fs.WriteFileSync(path.Join(dir, "spec.json"), b); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ptio.WriteDataset(&buf, pts, false); err != nil {
		return err
	}
	if err := j.fs.WriteFileSync(path.Join(dir, "input.mrsc"), buf.Bytes()); err != nil {
		return err
	}
	if err := j.fs.SyncDir(dir); err != nil {
		return err
	}
	if err := j.fs.SyncDir(j.jobsDir()); err != nil {
		return err
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		return err
	}
	return j.setState(id, string(StateQueued))
}

// setState appends one state-transition record to the log and fsyncs
// it. When setState returns nil, the transition is on stable storage.
func (j *journal) setState(id, state string) error {
	if !j.enabled() {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	frame, err := encodeRecord(logRecord{Seq: j.seq, ID: id, State: state})
	if err != nil {
		return err
	}
	if err := j.fs.AppendSync(j.logPath(), frame); err != nil {
		j.hub.Counter("server_journal_append_errors_total").Inc()
		return err
	}
	if !j.rootSynced {
		// First append created the log file; its name must be durable
		// too.
		if err := j.fs.SyncDir(j.dir); err != nil {
			return err
		}
		j.rootSynced = true
	}
	return nil
}

func encodeRecord(rec logRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, recHeaderSize+len(payload))
	frame[0], frame[1], frame[2] = 'J', 'L', recVersion
	binary.LittleEndian.PutUint32(frame[3:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[7:], integrity.Checksum(payload))
	copy(frame[recHeaderSize:], payload)
	return frame, nil
}

// validRecordAfter reports whether any byte position after from starts
// a fully-valid record — the discriminator between a torn tail (no
// valid data follows the damage) and interior corruption (it does).
func validRecordAfter(data []byte, from int) bool {
	for i := from; i+recHeaderSize <= len(data); i++ {
		if data[i] != 'J' || data[i+1] != 'L' || data[i+2] != recVersion {
			continue
		}
		n := int(binary.LittleEndian.Uint32(data[i+3:]))
		if n > maxRecordSize || i+recHeaderSize+n > len(data) {
			continue
		}
		payload := data[i+recHeaderSize : i+recHeaderSize+n]
		if integrity.Checksum(payload) == binary.LittleEndian.Uint32(data[i+7:]) && json.Valid(payload) {
			return true
		}
	}
	return false
}

// decodeRecords parses the log, returning the valid records, the byte
// length of the valid prefix, and whether a torn tail was dropped.
// Interior corruption returns ErrJournalCorrupt.
func decodeRecords(data []byte) (recs []logRecord, goodLen int, torn bool, err error) {
	off := 0
	for off < len(data) {
		bad := func(reason string) ([]logRecord, int, bool, error) {
			if validRecordAfter(data, off+1) {
				return nil, 0, false, fmt.Errorf("%w: %s at offset %d with valid records after it", ErrJournalCorrupt, reason, off)
			}
			return recs, off, true, nil
		}
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return recs, off, true, nil // torn mid-header
		}
		if rest[0] != 'J' || rest[1] != 'L' || rest[2] != recVersion {
			return bad("bad record header")
		}
		n := int(binary.LittleEndian.Uint32(rest[3:]))
		if n > maxRecordSize {
			return bad("implausible record length")
		}
		if len(rest) < recHeaderSize+n {
			return recs, off, true, nil // torn mid-payload
		}
		payload := rest[recHeaderSize : recHeaderSize+n]
		if integrity.Checksum(payload) != binary.LittleEndian.Uint32(rest[7:]) {
			return bad("record checksum mismatch")
		}
		var rec logRecord
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return bad("undecodable record payload")
		}
		recs = append(recs, rec)
		off += recHeaderSize + n
	}
	return recs, off, false, nil
}

// replayLog reads and decodes the journal, repairing a torn tail
// in place (crash-safely: tmp + fsync + rename + dir sync) when
// repair is true. Returns the last state per job and the highest
// record sequence.
func (j *journal) replayLog(repair bool) (map[string]State, int64, error) {
	states := make(map[string]State)
	raw, err := j.fs.ReadFile(j.logPath())
	if isNotExist(err) {
		return states, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("server: reading journal: %w", err)
	}
	recs, goodLen, torn, err := decodeRecords(raw)
	if err != nil {
		return nil, 0, err
	}
	if torn {
		j.hub.Counter("server_journal_torn_tail_total").Inc()
		j.hub.Event(nil, "server.journal-torn-tail",
			telemetry.Int("dropped_bytes", len(raw)-goodLen))
		if repair {
			tmp := j.logPath() + ".tmp"
			if err := j.fs.WriteFileSync(tmp, raw[:goodLen]); err != nil {
				return nil, 0, fmt.Errorf("server: repairing torn journal: %w", err)
			}
			if err := j.fs.Rename(tmp, j.logPath()); err != nil {
				return nil, 0, fmt.Errorf("server: repairing torn journal: %w", err)
			}
			if err := j.fs.SyncDir(j.dir); err != nil {
				return nil, 0, fmt.Errorf("server: repairing torn journal: %w", err)
			}
		}
	}
	var maxSeq int64
	for _, r := range recs {
		states[r.ID] = State(r.State)
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	return states, maxSeq, nil
}

// recoverJobs replays the journal and loads every job whose last
// record is non-terminal (queued, running, suspended) for
// re-admission, plus the highest job sequence number seen anywhere so
// new IDs never collide with journaled ones. Jobs are returned in ID
// order, which is submission order. Job directories without any
// journal record were never acknowledged and are skipped.
func (j *journal) recoverJobs() ([]recoveredJob, int, error) {
	if !j.enabled() {
		return nil, 0, nil
	}
	states, maxRecSeq, err := j.replayLog(true)
	if err != nil {
		return nil, 0, err
	}
	j.mu.Lock()
	j.seq = maxRecSeq
	if len(states) > 0 {
		j.rootSynced = true
	}
	j.mu.Unlock()

	maxSeq := 0
	if names, err := j.fs.ReadDirNames(j.jobsDir()); err == nil {
		for _, id := range names {
			if n, ok := jobSeq(id); ok && n > maxSeq {
				maxSeq = n
			}
		}
	}
	var out []recoveredJob
	for id, state := range states {
		if state == StateCompleted || state == StateFailed {
			continue
		}
		var spec persistedSpec
		sb, err := j.fs.ReadFile(path.Join(j.jobDir(id), "spec.json"))
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s: %w", id, err)
		}
		if err := json.Unmarshal(sb, &spec); err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s: %w", id, err)
		}
		in, err := j.fs.ReadFile(path.Join(j.jobDir(id), "input.mrsc"))
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s input: %w", id, err)
		}
		pts, err := ptio.ReadDataset(bytes.NewReader(in))
		if err != nil {
			return nil, 0, fmt.Errorf("server: recovering %s input: %w", id, err)
		}
		out = append(out, recoveredJob{id: id, spec: spec, points: pts})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out, maxSeq, nil
}

// stageOut copies the pipeline's checkpoint state files from a job's
// simulated file system into its journal checkpoint directory, fsynced
// and dir-synced — suspension is an ack, so the staged state must be
// durable before the suspended record is written.
func (j *journal) stageOut(fs *lustre.FS, id string) error {
	if !j.enabled() {
		return nil
	}
	dir := j.ckptDir(id)
	if err := j.fs.MkdirAll(dir); err != nil {
		return err
	}
	for _, name := range fs.List() {
		if !mrscan.IsStateFile(name) {
			continue
		}
		h, err := fs.Open(name)
		if err != nil {
			return err
		}
		data := make([]byte, h.Size())
		if len(data) > 0 {
			if _, err := h.ReadAt(data, 0); err != nil {
				return err
			}
		}
		if err := j.fs.WriteFileSync(path.Join(dir, name), data); err != nil {
			return err
		}
	}
	if err := j.fs.SyncDir(dir); err != nil {
		return err
	}
	return j.fs.SyncDir(j.jobDir(id))
}

// stageIn copies a job's staged checkpoint state back onto a fresh
// simulated file system before a resumed run.
func (j *journal) stageIn(fs *lustre.FS, id string) error {
	if !j.enabled() {
		return nil
	}
	names, err := j.fs.ReadDirNames(j.ckptDir(id))
	if isNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, name := range names {
		data, err := j.fs.ReadFile(path.Join(j.ckptDir(id), name))
		if err != nil {
			return err
		}
		if len(data) == 0 {
			fs.Create(name)
			continue
		}
		if _, err := fs.Create(name).WriteAt(data, 0); err != nil {
			return err
		}
	}
	return nil
}

// JournalStates replays the job journal under dir read-only (no
// repair) and returns the last journaled state per job ID plus whether
// the log ends in a torn tail. Interior corruption returns
// ErrJournalCorrupt. A nil fs uses the real OS filesystem. This is the
// audit surface the crash harness (and operators) use to check the
// acknowledgment invariant without starting a server.
func JournalStates(fs JournalFS, dir string) (map[string]State, bool, error) {
	j := newJournal(fs, dir, nil)
	if !j.enabled() {
		return nil, false, errors.New("server: JournalStates: empty dir")
	}
	raw, err := j.fs.ReadFile(j.logPath())
	if isNotExist(err) {
		return map[string]State{}, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	recs, _, torn, err := decodeRecords(raw)
	if err != nil {
		return nil, false, err
	}
	states := make(map[string]State, len(recs))
	for _, r := range recs {
		states[r.ID] = State(r.State)
	}
	return states, torn, nil
}

// jobSeq extracts the numeric sequence from a "job-000042" ID.
func jobSeq(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil {
		return 0, false
	}
	return n, true
}
