package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/mrscan"
	"repro/internal/quality"
)

// testPoints is a small Twitter-like workload shared by the serving
// tests; eps/minPts match the chaos harness's standard configuration.
func testPoints(n int, seed int64) []geom.Point {
	return dataset.Twitter(n, seed)
}

func testSpec(tenant string, pts []geom.Point) JobSpec {
	return JobSpec{Tenant: tenant, Points: pts, Eps: 0.1, MinPts: 20, Leaves: 2}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// referenceLabels is the fault-free full-quality pipeline run the
// served results are scored against.
func referenceLabels(t *testing.T, pts []geom.Point, spec JobSpec) []int {
	t.Helper()
	cfg := mrscan.Default(spec.Eps, spec.MinPts, spec.Leaves)
	cfg.IncludeNoise = true
	_, labels, err := mrscan.RunPoints(pts, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return labels
}

func TestSubmitCompletes(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(2000, 1)
	id, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCompleted {
		t.Fatalf("state = %s (err %q), want completed", st.State, st.Err)
	}
	if st.Degraded {
		t.Fatalf("unloaded server degraded a job")
	}
	labels, err := s.Result(id)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if len(labels) != len(pts) {
		t.Fatalf("got %d labels for %d points", len(labels), len(pts))
	}
	q, err := quality.Score(referenceLabels(t, pts, testSpec("acme", pts)), labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.995 {
		t.Fatalf("full-quality served job scored %.4f, want >= 0.995", q)
	}
	if got := s.Hub().Counter("server_jobs_completed_total", "tenant", "acme").Value(); got != 1 {
		t.Fatalf("server_jobs_completed_total{tenant=acme} = %d, want 1", got)
	}
}

func TestTypedRejections(t *testing.T) {
	// One worker, one queue slot per tenant: a slow in-flight job plus
	// one queued job saturates tenant capacity.
	s, err := New(Config{
		Workers:        1,
		QueuePerTenant: 1,
		QueueTotal:     4,
		TenantQuota:    10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(1500, 2)
	slow := testSpec("acme", pts)
	slow.FaultPlan = faultinject.New(1).Arm(mrscan.PhaseSite(mrscan.PhaseCluster),
		faultinject.Rule{Times: 1, Delay: 400 * time.Millisecond})
	first, err := s.Submit(slow)
	if err != nil {
		t.Fatalf("Submit slow job: %v", err)
	}
	// Wait until the slow job is dispatched so the next submission is
	// the one that queues.
	for {
		if st, _ := s.Status(first); st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatalf("Submit queued job: %v", err)
	}

	if _, err := s.Submit(testSpec("acme", pts)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue submit: err = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(testSpec("other", testPoints(10_001, 3))); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit: err = %v, want ErrQuotaExceeded", err)
	}
	if got := s.Hub().Counter("server_jobs_rejected_total", "tenant", "acme", "reason", "queue_full").Value(); got != 1 {
		t.Fatalf("rejected{queue_full} = %d, want 1", got)
	}
	if got := s.Hub().Counter("server_jobs_rejected_total", "tenant", "other", "reason", "quota").Value(); got != 1 {
		t.Fatalf("rejected{quota} = %d, want 1", got)
	}

	waitTerminal(t, s, first)
	waitTerminal(t, s, queued)
	s.Drain()
	if _, err := s.Submit(testSpec("acme", pts)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
}

func TestCircuitBreaker(t *testing.T) {
	s, err := New(Config{
		Workers:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		Retry:            mrscan.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(1000, 4)
	// Two consecutive loud failures (permanent fault, no retries, no
	// state dir to resume from) trip the tenant breaker.
	for i := 0; i < 2; i++ {
		spec := testSpec("flaky", pts)
		spec.FaultPlan = faultinject.New(int64(i+1)).Arm(
			mrscan.PhaseSite(mrscan.PhaseCluster), faultinject.Rule{})
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("Submit failing job %d: %v", i, err)
		}
		st := waitTerminal(t, s, id)
		if st.State != StateFailed {
			t.Fatalf("job %d state = %s, want failed", i, st.State)
		}
		if st.Err == "" {
			t.Fatalf("failed job %d has no error — a silent failure", i)
		}
	}
	if _, err := s.Submit(testSpec("flaky", pts)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("submit with open breaker: err = %v, want ErrBreakerOpen", err)
	}
	// Other tenants are unaffected by one tenant's breaker.
	id, err := s.Submit(testSpec("healthy", pts))
	if err != nil {
		t.Fatalf("healthy tenant submit with flaky breaker open: %v", err)
	}
	if st := waitTerminal(t, s, id); st.State != StateCompleted {
		t.Fatalf("healthy tenant job state = %s (err %q)", st.State, st.Err)
	}
	// After the cooldown the breaker closes and the tenant serves again.
	time.Sleep(120 * time.Millisecond)
	id, err = s.Submit(testSpec("flaky", pts))
	if err != nil {
		t.Fatalf("submit after breaker cooldown: %v", err)
	}
	if st := waitTerminal(t, s, id); st.State != StateCompleted {
		t.Fatalf("post-cooldown job state = %s (err %q)", st.State, st.Err)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// One worker and three tenants each queueing several jobs: every
	// tenant's work completes — a burst from one cannot starve another.
	s, err := New(Config{Workers: 1, QueuePerTenant: 8, QueueTotal: 32, DegradeQueueDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(800, 5)
	var ids []string
	for _, tenant := range []string{"a", "a", "a", "b", "c", "b"} {
		id, err := s.Submit(testSpec(tenant, pts))
		if err != nil {
			t.Fatalf("Submit(%s): %v", tenant, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != StateCompleted {
			t.Fatalf("job %s state = %s (err %q)", id, st.State, st.Err)
		}
	}
	for _, tenant := range []string{"a", "b", "c"} {
		want := int64(1)
		if tenant == "a" {
			want = 3
		} else if tenant == "b" {
			want = 2
		}
		if got := s.Hub().Counter("server_jobs_completed_total", "tenant", tenant).Value(); got != want {
			t.Fatalf("completed{%s} = %d, want %d", tenant, got, want)
		}
	}
}

func TestFatalFaultResumesInPlace(t *testing.T) {
	// A fatal fault models the job's worker process dying mid-run. With
	// a state directory the job's checkpoints are durable, so the server
	// requeues it once with Resume — and the restored phases show up on
	// the status.
	s, err := New(Config{Workers: 1, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(2000, 6)
	spec := testSpec("acme", pts)
	spec.FaultPlan = faultinject.New(7).Arm(mrscan.PhaseSite(mrscan.PhaseMerge),
		faultinject.Rule{Times: 1, Fatal: true})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCompleted {
		t.Fatalf("state = %s (err %q), want completed after in-place resume", st.State, st.Err)
	}
	if !st.Resumed {
		t.Fatalf("job survived a fatal fault but is not marked resumed")
	}
	if len(st.RestoredPhases) == 0 {
		t.Fatalf("resumed job restored no phases — it recomputed instead of resuming")
	}
	labels, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quality.Score(referenceLabels(t, pts, spec), labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.995 {
		t.Fatalf("resumed job scored %.4f against fault-free reference, want >= 0.995", q)
	}
	if got := s.Hub().Counter("server_jobs_resumed_total", "tenant", "acme").Value(); got != 1 {
		t.Fatalf("server_jobs_resumed_total = %d, want 1", got)
	}
}
