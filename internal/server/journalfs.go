package server

import (
	"os"
	"sort"
	"strings"

	"repro/internal/lustre"
)

// JournalFS is the storage surface the job journal writes through. The
// default implementation is the real OS filesystem (the daemon's state
// directory must survive process death); the crash harness substitutes
// a simulated crash-capable filesystem to audit the journal's sync
// ordering under power failure.
//
// Durability contract: WriteFileSync and AppendSync return only after
// the written bytes are on stable storage (fsync). SyncDir makes
// completed creates/renames under dir durable. Rename is atomic but
// not durable until SyncDir, exactly as POSIX.
type JournalFS interface {
	MkdirAll(dir string) error
	WriteFileSync(name string, data []byte) error
	AppendSync(name string, data []byte) error
	ReadFile(name string) ([]byte, error)
	ReadDirNames(dir string) ([]string, error)
	Rename(oldname, newname string) error
	SyncDir(dir string) error
}

// osJournalFS implements JournalFS on the real filesystem.
type osJournalFS struct{}

func (osJournalFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osJournalFS) WriteFileSync(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osJournalFS) AppendSync(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osJournalFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osJournalFS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osJournalFS) Rename(o, n string) error { return os.Rename(o, n) }

func (osJournalFS) SyncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// lustreJournalFS implements JournalFS on the simulated parallel file
// system, whose namespace is flat: slash-separated journal paths are
// just file names, directories are implicit, and SyncDir maps to the
// simulator's per-directory namespace sync. Used by the crash harness
// to drive the journal through simulated power failures.
type lustreJournalFS struct{ fs *lustre.FS }

// LustreJournalFS adapts a simulated file system as journal storage.
func LustreJournalFS(fs *lustre.FS) JournalFS { return lustreJournalFS{fs} }

func (lustreJournalFS) MkdirAll(dir string) error { return nil }

func (l lustreJournalFS) WriteFileSync(name string, data []byte) error {
	h := l.fs.Create(name)
	if len(data) > 0 {
		if _, err := h.WriteAt(data, 0); err != nil {
			return err
		}
	}
	return h.Sync()
}

func (l lustreJournalFS) AppendSync(name string, data []byte) error {
	h := l.fs.OpenOrCreate(name)
	if _, err := h.WriteAt(data, h.Size()); err != nil {
		return err
	}
	return h.Sync()
}

func (l lustreJournalFS) ReadFile(name string) ([]byte, error) {
	h, err := l.fs.Open(name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, h.Size())
	if len(data) == 0 {
		return data, nil
	}
	if _, err := h.ReadAt(data, 0); err != nil {
		return nil, err
	}
	return data, nil
}

func (l lustreJournalFS) ReadDirNames(dir string) ([]string, error) {
	prefix := dir + "/"
	seen := make(map[string]bool)
	var names []string
	for _, n := range l.fs.List() {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		first := strings.SplitN(n[len(prefix):], "/", 2)[0]
		if !seen[first] {
			seen[first] = true
			names = append(names, first)
		}
	}
	if len(names) == 0 {
		return nil, os.ErrNotExist
	}
	sort.Strings(names)
	return names, nil
}

func (l lustreJournalFS) Rename(o, n string) error { return l.fs.Rename(o, n) }

func (l lustreJournalFS) SyncDir(dir string) error { return l.fs.SyncDir(dir) }
