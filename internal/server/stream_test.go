package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/stream"
)

// refEngine builds a fault-free reference engine with the same
// parameters a server stream uses, for label comparison.
func refEngine(t *testing.T, sp StreamSpec) *stream.Engine {
	t.Helper()
	eng, err := stream.New(stream.Config{
		Eps: sp.Eps, MinPts: sp.MinPts, WindowTicks: sp.WindowTicks,
		SubsampleThreshold: sp.SubsampleThreshold, SubsampleRate: sp.SubsampleRate,
		ReanchorEvery: sp.ReanchorEvery, Seed: sp.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sameSnapshot(t *testing.T, got, want stream.Snapshot, context string) {
	t.Helper()
	if got.Tick != want.Tick || len(got.Points) != len(want.Points) || got.NumClusters != want.NumClusters {
		t.Fatalf("%s: snapshot shape (tick %d, %d pts, %d clusters) != reference (tick %d, %d pts, %d clusters)",
			context, got.Tick, len(got.Points), got.NumClusters, want.Tick, len(want.Points), want.NumClusters)
	}
	for i := range got.Points {
		if got.Points[i].ID != want.Points[i].ID || got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: point %d: got (id %d, label %d), reference (id %d, label %d)",
				context, i, got.Points[i].ID, got.Labels[i], want.Points[i].ID, want.Labels[i])
		}
	}
}

func TestStreamLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sp := StreamSpec{Tenant: "acme", Name: "geo", Eps: 0.12, MinPts: 5, WindowTicks: 4}
	id, err := s.CreateStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	ref := refEngine(t, sp)
	batches := dataset.Firehose(8, 80, 31, dataset.DefaultFirehoseOptions())
	for _, batch := range batches {
		if _, err := s.StreamTick(id, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Tick(batch); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.StreamSnapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	sameSnapshot(t, snap, ref.Snapshot(), "after 8 ticks")

	st, err := s.StreamStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 8 || st.WindowPoints != 4*80 || st.Tenant != "acme" || st.Name != "geo" {
		t.Fatalf("status = %+v", st)
	}
	if got := s.Streams(); len(got) != 1 || got[0].ID != id {
		t.Fatalf("Streams() = %+v", got)
	}

	// Closing refunds the tenant's window tokens and removes state.
	s.mu.Lock()
	held := s.tenants["acme"].tokens
	s.mu.Unlock()
	if held != 4*80 {
		t.Fatalf("tenant holds %d tokens, want %d", held, 4*80)
	}
	if err := s.CloseStream(id); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	held = s.tenants["acme"].tokens
	s.mu.Unlock()
	if held != 0 {
		t.Fatalf("tokens after close = %d, want 0", held)
	}
	if _, err := os.Stat(s.streamDir(id)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stream dir survives close: %v", err)
	}
	if _, err := s.StreamSnapshot(id); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("snapshot after close = %v, want ErrUnknownStream", err)
	}
}

func TestStreamAdmission(t *testing.T) {
	s, err := New(Config{Workers: 1, StreamsPerTenant: 1, TenantQuota: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sp := StreamSpec{Tenant: "a", Eps: 0.1, MinPts: 3, WindowTicks: 2}
	id, err := s.CreateStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Per-tenant stream cap.
	if _, err := s.CreateStream(sp); !errors.Is(err, ErrStreamLimit) {
		t.Fatalf("second stream: %v, want ErrStreamLimit", err)
	}
	// Another tenant is unaffected.
	if _, err := s.CreateStream(StreamSpec{Tenant: "b", Eps: 0.1, MinPts: 3, WindowTicks: 2}); err != nil {
		t.Fatal(err)
	}
	// Bad spec rejected up front.
	if _, err := s.CreateStream(StreamSpec{Tenant: "a", Eps: -1, MinPts: 3, WindowTicks: 2}); err == nil {
		t.Fatal("negative eps accepted")
	}

	// Quota: a tick that would push the window past TenantQuota is
	// rejected and leaves both tokens and the engine untouched.
	batch := make([]geom.Point, 90)
	for i := range batch {
		batch[i] = geom.Point{ID: uint64(i), X: float64(i), Y: 0}
	}
	if _, err := s.StreamTick(id, batch); err != nil {
		t.Fatal(err)
	}
	over := make([]geom.Point, 20)
	for i := range over {
		over[i] = geom.Point{ID: uint64(1000 + i), X: float64(i), Y: 5}
	}
	if _, err := s.StreamTick(id, over); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota tick: %v, want ErrQuotaExceeded", err)
	}
	s.mu.Lock()
	held := s.tenants["a"].tokens
	s.mu.Unlock()
	if held != 90 {
		t.Fatalf("tokens after rejected tick = %d, want 90", held)
	}
	st, _ := s.StreamStatus(id)
	if st.Tick != 1 || st.WindowPoints != 90 {
		t.Fatalf("rejected tick advanced the stream: %+v", st)
	}

	// A rejected batch (duplicate IDs) refunds its full charge too.
	if _, err := s.StreamTick(id, []geom.Point{{ID: 5, X: 0, Y: 0}, {ID: 5, X: 1, Y: 1}}); err == nil {
		t.Fatal("duplicate-ID batch accepted")
	}
	s.mu.Lock()
	held = s.tenants["a"].tokens
	s.mu.Unlock()
	if held != 90 {
		t.Fatalf("tokens after invalid batch = %d, want 90", held)
	}

	// Draining rejects creation and ingest but still allows close.
	s.Drain()
	if _, err := s.CreateStream(StreamSpec{Tenant: "c", Eps: 0.1, MinPts: 3, WindowTicks: 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create while draining: %v, want ErrDraining", err)
	}
	if _, err := s.StreamTick(id, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("tick while draining: %v, want ErrDraining", err)
	}
	if err := s.CloseStream(id); err != nil {
		t.Fatalf("close while draining: %v", err)
	}
}

func TestStreamRecovery(t *testing.T) {
	dir := t.TempDir()
	sp := StreamSpec{Tenant: "acme", Name: "geo", Eps: 0.12, MinPts: 5, WindowTicks: 3}
	batches := dataset.Firehose(10, 70, 17, dataset.DefaultFirehoseOptions())
	ref := refEngine(t, sp)

	s1, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.CreateStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches[:6] {
		if _, err := s1.StreamTick(id, batch); err != nil {
			t.Fatal(err)
		}
	}
	s1.Drain()
	s1.Close()

	// A new instance on the same directory recovers the stream: same ID,
	// same labels, quota re-charged, and ticking continues seamlessly.
	s2, err := New(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.StreamStatus(id)
	if err != nil {
		t.Fatalf("stream not recovered: %v", err)
	}
	if !st.Recovered || st.Tick != 6 || st.WindowPoints != 3*70 || st.Tenant != "acme" {
		t.Fatalf("recovered status = %+v", st)
	}
	s2.mu.Lock()
	held := s2.tenants["acme"].tokens
	s2.mu.Unlock()
	if held != 3*70 {
		t.Fatalf("recovered tenant holds %d tokens, want %d", held, 3*70)
	}

	for ti, batch := range batches {
		if _, err := ref.Tick(batch); err != nil {
			t.Fatal(err)
		}
		if ti >= 6 {
			if _, err := s2.StreamTick(id, batch); err != nil {
				t.Fatal(err)
			}
		}
		if ti == 5 {
			snap, err := s2.StreamSnapshot(id)
			if err != nil {
				t.Fatal(err)
			}
			sameSnapshot(t, snap, ref.Snapshot(), "immediately after recovery")
		}
	}
	snap, err := s2.StreamSnapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	sameSnapshot(t, snap, ref.Snapshot(), "after post-recovery ticks")

	// A fresh stream on the recovered server gets a non-colliding ID.
	id2, err := s2.CreateStream(sp)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("recovered server reissued stream ID %s", id)
	}
}

func TestHTTPStreamEndpoints(t *testing.T) {
	s, err := New(Config{Workers: 1, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, m := postJSON(t, ts, "/api/v1/streams",
		`{"tenant":"acme","name":"geo","eps":0.12,"min_pts":5,"window_ticks":3}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d body %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("create returned no id: %v", m)
	}

	// Feed a few ticks and check the stats response.
	batches := dataset.Firehose(4, 50, 7, dataset.DefaultFirehoseOptions())
	for ti, batch := range batches {
		var sb strings.Builder
		sb.WriteString(`{"points":[`)
		for i, p := range batch {
			if i > 0 {
				sb.WriteByte(',')
			}
			b, _ := json.Marshal(pointJSON{ID: p.ID, X: p.X, Y: p.Y})
			sb.Write(b)
		}
		sb.WriteString(`]}`)
		resp, m = postJSON(t, ts, "/api/v1/streams/"+id+"/points", sb.String())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d status = %d body %v", ti, resp.StatusCode, m)
		}
		if int(m["tick"].(float64)) != ti+1 || int(m["arrivals"].(float64)) != 50 {
			t.Fatalf("tick %d stats = %v", ti, m)
		}
	}

	resp, m = getJSON(t, ts, "/api/v1/streams/"+id)
	if resp.StatusCode != http.StatusOK || int(m["tick"].(float64)) != 4 || int(m["window_points"].(float64)) != 150 {
		t.Fatalf("status = %d body %v", resp.StatusCode, m)
	}
	resp, m = getJSON(t, ts, "/api/v1/streams/"+id+"/clusters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clusters status = %d", resp.StatusCode)
	}
	if int(m["window_points"].(float64)) != 150 {
		t.Fatalf("clusters summary = %v", m)
	}

	// The chunked snapshot parses as one JSON document with every window
	// point labeled.
	resp, m = getJSON(t, ts, "/api/v1/streams/"+id+"/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	pts, _ := m["points"].([]any)
	if len(pts) != 150 {
		t.Fatalf("snapshot has %d points, want 150", len(pts))
	}
	first, _ := pts[0].(map[string]any)
	for _, k := range []string{"id", "x", "y", "label"} {
		if _, ok := first[k]; !ok {
			t.Fatalf("snapshot point missing %q: %v", k, first)
		}
	}

	// Listing shows the stream; deletion removes it and later lookups 404.
	lresp, err := ts.Client().Get(ts.URL + "/api/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 1 || list[0]["id"] != id {
		t.Fatalf("stream list = %v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/streams/"+id, nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	resp, m = getJSON(t, ts, "/api/v1/streams/"+id)
	if resp.StatusCode != http.StatusNotFound || m["reason"] != "unknown_stream" {
		t.Fatalf("deleted stream lookup = %d %v", resp.StatusCode, m)
	}
}
