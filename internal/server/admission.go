package server

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Admission control: the server's first line of defense under overload.
// Work is bounded at three levels — per-tenant queue depth, total queue
// depth, and per-tenant in-system point count (the "token quota") — and
// anything over a bound is rejected at submission time with a typed
// error, so overload surfaces as backpressure the client can reason
// about instead of as memory growth or tail latency inside the server.

// tenantState is one tenant's serving account: its FIFO of queued jobs,
// the quota tokens (input points) it currently holds across queued and
// running jobs, and its circuit breaker.
type tenantState struct {
	name    string
	queue   []*Job
	tokens  int64
	breaker *breaker
}

// tenantLocked returns (creating on first use) the tenant's state.
// Caller holds s.mu.
func (s *Server) tenantLocked(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{
			name: name,
			breaker: newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown,
				s.hub.Counter("server_breaker_trips_total", "scope", "tenant", "tenant", name),
				s.hub.Gauge("server_breaker_state", "scope", "tenant", "tenant", name)),
		}
		s.tenants[name] = t
		s.order = append(s.order, name)
	}
	return t
}

// admitLocked is the admission decision for one submission: drain gate,
// breaker gate, queue bounds, quota. On success the tenant's quota
// tokens are charged; every rejection increments
// server_jobs_rejected_total{tenant,reason} and emits a transition
// event. Caller holds s.mu.
func (s *Server) admitLocked(spec *JobSpec) error {
	reject := func(reason string, err error) error {
		s.hub.Counter("server_jobs_rejected_total", "tenant", spec.Tenant, "reason", reason).Inc()
		s.hub.Event(nil, "server.rejected", telemetry.String("tenant", spec.Tenant),
			telemetry.String("reason", reason))
		return err
	}
	if s.draining || s.closed {
		return reject("draining", fmt.Errorf("%w: tenant %s", ErrDraining, spec.Tenant))
	}
	now := time.Now()
	t := s.tenantLocked(spec.Tenant)
	if !s.global.allow(now) {
		return reject("breaker", fmt.Errorf("%w: pipeline (global)", ErrBreakerOpen))
	}
	if !t.breaker.allow(now) {
		return reject("breaker", fmt.Errorf("%w: tenant %s", ErrBreakerOpen, spec.Tenant))
	}
	if len(t.queue) >= s.cfg.QueuePerTenant {
		return reject("queue_full", fmt.Errorf("%w: tenant %s at %d queued jobs",
			ErrQueueFull, spec.Tenant, len(t.queue)))
	}
	if s.queued >= s.cfg.QueueTotal {
		return reject("queue_full", fmt.Errorf("%w: server at %d queued jobs",
			ErrQueueFull, s.queued))
	}
	need := int64(len(spec.Points))
	if s.cfg.TenantQuota > 0 && t.tokens+need > s.cfg.TenantQuota {
		return reject("quota", fmt.Errorf("%w: tenant %s holds %d of %d points, job needs %d",
			ErrQuotaExceeded, spec.Tenant, t.tokens, s.cfg.TenantQuota, need))
	}
	t.tokens += need
	return nil
}

// enqueueLocked appends the job to its tenant's queue. Caller holds
// s.mu and has already charged the quota tokens.
func (s *Server) enqueueLocked(job *Job) {
	t := s.tenantLocked(job.tenant)
	t.queue = append(t.queue, job)
	s.jobs[job.id] = job
	s.queued++
	s.setQueueGauges(t)
}

// dequeueLocked pops the next job fairly: round-robin across tenants in
// first-seen order, FIFO within a tenant, so one tenant's burst cannot
// starve the others. Returns nil when every queue is empty. Caller
// holds s.mu.
func (s *Server) dequeueLocked() *Job {
	n := len(s.order)
	for i := 0; i < n; i++ {
		t := s.tenants[s.order[(s.rr+i)%n]]
		if len(t.queue) == 0 {
			continue
		}
		job := t.queue[0]
		t.queue = t.queue[1:]
		s.rr = (s.rr + i + 1) % n
		s.queued--
		s.setQueueGauges(t)
		return job
	}
	return nil
}

// releaseTokensLocked returns a job's quota tokens when it leaves the
// system (completed, failed, or suspended). Caller holds s.mu.
func (s *Server) releaseTokensLocked(job *Job) {
	t := s.tenantLocked(job.tenant)
	t.tokens -= int64(len(job.spec.Points))
	if t.tokens < 0 {
		t.tokens = 0
	}
	s.hub.Gauge("server_tenant_tokens", "tenant", t.name).Set(t.tokens)
}

// setQueueGauges refreshes the per-tenant and total queue-depth gauges.
// Caller holds s.mu.
func (s *Server) setQueueGauges(t *tenantState) {
	s.hub.Gauge("server_queue_depth", "tenant", t.name).Set(int64(len(t.queue)))
	s.hub.Gauge("server_queue_depth_total").Set(int64(s.queued))
	s.hub.Gauge("server_tenant_tokens", "tenant", t.name).Set(t.tokens)
}
