// Package server is the long-running clustering-as-a-service layer over
// the Mr. Scan pipeline: many tenants submit clustering jobs against one
// process holding the shared GPGPU-tree substrate, and the server's
// headline property is robustness under overload and failure, not just
// existence.
//
// The serving state machine is:
//
//	submit → admitted → queued → running → completed
//	            │                   │    ↘ failed (loudly, typed error)
//	            │                   │    ↘ suspended (drain / process death)
//	            ↘ rejected           ↘ resumed → running → …
//	              (ErrQueueFull | ErrQuotaExceeded |
//	               ErrDraining  | ErrBreakerOpen)
//
// Four mechanisms implement it:
//
//   - Admission control: per-tenant bounded queues, a global queue bound,
//     and per-tenant point-count quotas. Overload is shed at the door
//     with typed errors the client can act on — never by OOMing later.
//   - Deadline-aware scheduling: a fixed worker pool drains the tenant
//     queues round-robin (no tenant starves), each job runs under its
//     own timeout, transient pipeline faults retry with backoff
//     (mrscan.Config.Retry), and consecutive failures trip a per-tenant
//     or whole-pipeline circuit breaker that sheds further load until a
//     cooldown elapses.
//   - Graceful degradation: when queue depth or p95 job latency crosses
//     a watermark, newly admitted jobs run in a degraded mode — the
//     input is subsampled and MinPts scaled (the subsampled-similarity-
//     queries construction of Jiang, Jang & Łącki), then unsampled
//     points are attached by estimated-core majority vote — trading a
//     bounded quality loss (≥ 0.95 DBDC in practice) for throughput.
//     The mode is recorded on the job result, never silent.
//   - Graceful drain: Drain stops admission, lets in-flight jobs finish
//     under a drain deadline, and suspends the rest — queued jobs
//     immediately, in-flight jobs after cancelling them at a phase
//     boundary with their checkpoints staged to the state directory. A
//     new server on the same directory re-admits every suspended job
//     and resumes it from its longest valid checkpoint prefix
//     (internal/checkpoint), so a SIGTERM never silently drops a job.
//
// Every transition flows through internal/telemetry with per-tenant
// labels (server_jobs_*_total{tenant,...}, server_queue_depth{tenant},
// server_job_latency_seconds{tenant}, server_breaker_state{scope}) and
// out the Prometheus exporter. The seeded overload scenario in
// internal/chaos drives all four mechanisms at once and audits the
// invariant: every admitted job terminates in exactly one of
// {completed, failed-loudly, resumed-after-restart}, with zero silent
// drops.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/lustre"
	"repro/internal/mrscan"
	"repro/internal/ptio"
	"repro/internal/telemetry"
)

// Typed admission rejections. Clients distinguish them with errors.Is:
// queue-full and quota are per-tenant backpressure (retry later or shed
// upstream), draining and breaker-open mean the server as a whole is
// refusing work.
var (
	// ErrQueueFull: the tenant's queue (or the global queue bound) is at
	// capacity. Backpressure — retry after jobs drain.
	ErrQueueFull = errors.New("server: queue full")
	// ErrQuotaExceeded: admitting the job would push the tenant's
	// queued+running point count over its quota.
	ErrQuotaExceeded = errors.New("server: tenant quota exceeded")
	// ErrDraining: the server is draining (SIGTERM) or closed; no new
	// work is admitted.
	ErrDraining = errors.New("server: draining")
	// ErrBreakerOpen: the tenant's (or the global) circuit breaker is
	// open after consecutive failures; admission resumes after cooldown.
	ErrBreakerOpen = errors.New("server: circuit breaker open")
	// ErrUnknownJob: no job with that ID.
	ErrUnknownJob = errors.New("server: unknown job")
	// ErrJobNotFinished: the job exists but has not reached a terminal
	// state yet.
	ErrJobNotFinished = errors.New("server: job not finished")
)

// State is a job's position in the serving state machine.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	// StateSuspended: the job was interrupted by a drain or a simulated
	// process death and its durable state (input + checkpoints) is
	// staged in the state directory; a server restarted on the same
	// directory re-admits and resumes it.
	StateSuspended State = "suspended"
)

// Terminal reports whether a job in this state will never run again on
// this server instance. Suspended is terminal here but not globally —
// a restarted server resumes it.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateSuspended
}

// JobSpec is one submission.
type JobSpec struct {
	// Tenant is the submitting principal; admission control, quotas,
	// breakers and metrics are all keyed by it. Empty means "default".
	Tenant string
	// Points is the dataset to cluster.
	Points []geom.Point
	// Eps, MinPts, Leaves are the pipeline parameters (mrscan.Default).
	Eps    float64
	MinPts int
	Leaves int
	// Deadline overrides Config.JobTimeout for this job when positive.
	Deadline time.Duration
	// NoDegrade opts the job out of degraded mode: it always runs at
	// full quality, even past the overload watermarks.
	NoDegrade bool
	// FaultPlan, when non-nil, is installed on the job's pipeline run —
	// the chaos and test hook for transient faults and simulated process
	// death. Not journaled: a resumed job runs fault-free.
	FaultPlan *faultinject.Plan
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Degraded records that the job ran (or will run) in degraded mode
	// at SampleRate; the quality floor for degraded output is 0.95
	// rather than the paper's 0.995.
	Degraded   bool    `json:"degraded,omitempty"`
	SampleRate float64 `json:"sample_rate,omitempty"`
	// Resumed marks a job restored after a drain/restart or a simulated
	// process death; RestoredPhases lists the pipeline phases replayed
	// from checkpoints instead of recomputed.
	Resumed         bool      `json:"resumed,omitempty"`
	RestoredPhases  []string  `json:"restored_phases,omitempty"`
	CompletedPhases []string  `json:"completed_phases,omitempty"`
	NumClusters     int       `json:"num_clusters,omitempty"`
	Points          int       `json:"points"`
	Retries         int       `json:"retries,omitempty"`
	Err             string    `json:"error,omitempty"`
	Submitted       time.Time `json:"submitted"`
	Started         time.Time `json:"started,omitempty"`
	Finished        time.Time `json:"finished,omitempty"`
}

// Job is the server-side record of one submission. All fields are
// guarded by the owning Server's mutex.
type Job struct {
	id     string
	tenant string
	spec   JobSpec

	state        State
	degraded     bool
	sampleRate   float64
	resumed      bool // restored after restart or fatal fault
	fatalRetried bool // one in-place resume after a fatal fault already used
	restored     []string
	completed    []string
	retries      int
	numClusters  int
	labels       []int
	err          error

	submitted time.Time
	started   time.Time
	finished  time.Time

	hub *telemetry.Hub // job-private pipeline hub
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Degraded: j.degraded, SampleRate: j.sampleRate,
		Resumed:         j.resumed,
		RestoredPhases:  append([]string(nil), j.restored...),
		CompletedPhases: append([]string(nil), j.completed...),
		NumClusters:     j.numClusters,
		Points:          len(j.spec.Points),
		Retries:         j.retries,
		Submitted:       j.submitted, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Config configures a Server. The zero value is usable: every field has
// a serving-sane default.
type Config struct {
	// Workers is the number of concurrent pipeline executors (default 2).
	Workers int
	// QueuePerTenant bounds each tenant's queued (not yet running) jobs
	// (default 16). QueueTotal bounds the sum across tenants (default
	// 4×QueuePerTenant).
	QueuePerTenant int
	QueueTotal     int
	// TenantQuota bounds a tenant's total queued+running input points
	// (default 4M; <0 disables).
	TenantQuota int64
	// JobTimeout is the per-job deadline (default 5m). A job exceeding
	// it fails loudly with the context error.
	JobTimeout time.Duration
	// DrainTimeout is how long Drain lets in-flight jobs finish before
	// cancelling and suspending them (default 5s).
	DrainTimeout time.Duration
	// Retry is the per-phase retry policy installed on every job's
	// pipeline run (default 3 attempts, 10ms backoff).
	Retry mrscan.RetryPolicy
	// BreakerThreshold trips a tenant's circuit breaker after that many
	// consecutive failed jobs (default 3; <0 disables). GlobalBreaker-
	// Threshold does the same across all tenants (default 4×tenant).
	// BreakerCooldown is how long a tripped breaker rejects admissions
	// (default 5s).
	BreakerThreshold       int
	GlobalBreakerThreshold int
	BreakerCooldown        time.Duration
	// DegradeQueueDepth is the total queued-job watermark beyond which
	// newly admitted jobs run degraded (default 3/4 of QueueTotal; <0
	// disables). DegradeP95 is the completed-job p95 latency watermark
	// (default 0 = disabled).
	DegradeQueueDepth int
	DegradeP95        time.Duration
	// SampleRate is the degraded-mode subsample rate in (0,1)
	// (default 0.8 — pair-operation cost scales roughly with the rate
	// squared, and 0.8 holds the 0.95 quality floor with margin; lower
	// rates buy more throughput for more quality loss).
	SampleRate float64
	// StateDir, when non-empty, is the durable directory for job specs,
	// inputs and staged checkpoints — the substrate of drain/resume.
	// Empty disables durability: drains cancel and fail in-flight jobs.
	StateDir string
	// JournalFS is the storage the journal writes through. Nil (the
	// default) uses the real OS filesystem; the crash harness injects a
	// simulated crash-capable filesystem to audit sync ordering under
	// power failure.
	JournalFS JournalFS
	// Telemetry is the server-level hub (metrics + transition events).
	// Nil provisions a private hub, exposed via Hub().
	Telemetry *telemetry.Hub
	// StreamsPerTenant caps a tenant's concurrent sliding-window streams
	// (default 4; negative disables the cap).
	StreamsPerTenant int
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueuePerTenant <= 0 {
		c.QueuePerTenant = 16
	}
	if c.QueueTotal <= 0 {
		c.QueueTotal = 4 * c.QueuePerTenant
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = 4 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = mrscan.RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.GlobalBreakerThreshold == 0 {
		c.GlobalBreakerThreshold = 4 * c.BreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.DegradeQueueDepth == 0 {
		c.DegradeQueueDepth = 3 * c.QueueTotal / 4
	}
	if c.SampleRate <= 0 || c.SampleRate >= 1 {
		c.SampleRate = 0.8
	}
	if c.StreamsPerTenant == 0 {
		c.StreamsPerTenant = 4
	}
}

// Server is a multi-tenant clustering job server. Create with New, stop
// with Drain (graceful) and/or Close.
type Server struct {
	cfg Config
	hub *telemetry.Hub
	jr  *journal

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantState
	order    []string // round-robin tenant order
	rr       int
	jobs     map[string]*Job
	queued   int // total queued jobs
	inflight int // jobs currently running
	seq      int
	draining bool
	closed   bool

	streams   map[string]*streamState
	streamSeq int

	global *breaker
	lat    *latencyWindow

	runCtx    context.Context // cancelled to abort in-flight jobs
	runCancel context.CancelFunc
	wg        sync.WaitGroup
}

// New starts a server: workers are spawned immediately, and if
// cfg.StateDir holds suspended jobs from a previous instance they are
// recovered and re-queued for resumption before New returns.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.New(nil)
	}
	s := &Server{
		cfg:     cfg,
		hub:     hub,
		jr:      newJournal(cfg.JournalFS, cfg.StateDir, hub),
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*Job),
		streams: make(map[string]*streamState),
		lat:     newLatencyWindow(64),
	}
	s.cond = sync.NewCond(&s.mu)
	s.global = newBreaker(cfg.GlobalBreakerThreshold, cfg.BreakerCooldown,
		hub.Counter("server_breaker_trips_total", "scope", "global"),
		hub.Gauge("server_breaker_state", "scope", "global"))
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.recoverStreams(); err != nil {
		return nil, err
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Hub returns the server-level telemetry hub (metrics + events).
func (s *Server) Hub() *telemetry.Hub { return s.hub }

// Submit runs admission control and either queues the job (returning
// its ID) or rejects it with one of the typed errors. The degraded-mode
// decision is taken here — "new jobs run degraded" once the overload
// watermarks are crossed — and recorded on the job before it runs.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if len(spec.Points) == 0 {
		return "", fmt.Errorf("server: job has no points")
	}
	if spec.Eps <= 0 || spec.MinPts < 1 {
		return "", fmt.Errorf("server: invalid parameters eps=%v minPts=%d", spec.Eps, spec.MinPts)
	}
	if spec.Leaves <= 0 {
		spec.Leaves = 2
	}

	s.mu.Lock()
	s.hub.Counter("server_jobs_submitted_total", "tenant", spec.Tenant).Inc()
	if err := s.admitLocked(&spec); err != nil {
		s.mu.Unlock()
		return "", err
	}
	s.seq++
	job := &Job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		tenant:    spec.Tenant,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		hub:       telemetry.New(nil),
	}
	if !spec.NoDegrade && s.shouldDegradeLocked() {
		job.degraded = true
		job.sampleRate = s.cfg.SampleRate
		s.hub.Counter("server_jobs_degraded_total", "tenant", job.tenant).Inc()
		s.hub.Event(nil, "server.degraded", telemetry.String("tenant", job.tenant),
			telemetry.String("job", job.id))
	}
	s.mu.Unlock()

	// Journal outside the lock but before the job becomes visible to the
	// workers: its spec and input are durable before the caller learns
	// the ID, so an admitted job survives a crash, and no worker can
	// start a job whose journal entry is half-written.
	if err := s.jr.writeSpec(job.id, persistedSpec{
		Tenant: job.tenant, Eps: spec.Eps, MinPts: spec.MinPts,
		Leaves: spec.Leaves, DeadlineNS: int64(spec.Deadline),
		NoDegrade: spec.NoDegrade, Degraded: job.degraded, SampleRate: job.sampleRate,
	}, spec.Points); err != nil {
		s.mu.Lock()
		s.releaseTokensLocked(job)
		s.mu.Unlock()
		return "", fmt.Errorf("server: journaling job: %w", err)
	}

	s.mu.Lock()
	s.hub.Counter("server_jobs_admitted_total", "tenant", job.tenant).Inc()
	s.hub.Event(nil, "server.admitted", telemetry.String("tenant", job.tenant),
		telemetry.String("job", job.id))
	if s.draining || s.closed {
		// Drain began while we were journaling. The job is admitted and
		// durable, so it is suspended — a restart resumes it — rather
		// than silently dropped.
		s.jobs[job.id] = job
		s.suspendLocked(job, ErrDraining)
		s.mu.Unlock()
		return job.id, nil
	}
	s.enqueueLocked(job)
	s.cond.Broadcast()
	s.mu.Unlock()
	return job.id, nil
}

// Status returns a snapshot of the job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return job.statusLocked(), nil
}

// Result returns a completed job's per-point labels (aligned with the
// submitted points; -1 = noise). ErrJobNotFinished while the job is
// still queued/running; a failed job returns its terminal error.
func (s *Server) Result(id string) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	switch job.state {
	case StateCompleted:
		return append([]int(nil), job.labels...), nil
	case StateFailed:
		return nil, job.err
	default:
		return nil, ErrJobNotFinished
	}
}

// Jobs lists a snapshot of every job, sorted by ID.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.statusLocked())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the serving loop down: admission stops
// (Submit returns ErrDraining), queued jobs are suspended immediately,
// and in-flight jobs get cfg.DrainTimeout to finish before being
// cancelled at a phase boundary and suspended with their checkpoints
// staged out. It returns when every job has reached a terminal state.
// Without a StateDir there is nowhere to suspend to, so interrupted
// jobs fail loudly instead.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.hub.Event(nil, "server.draining")
	s.hub.Gauge("server_draining").Set(1)
	// Queued jobs never started: suspend them in place. Their journaled
	// spec + input is already durable, so a restart re-queues them.
	for _, t := range s.tenants {
		for _, job := range t.queue {
			s.suspendLocked(job, errors.New("server: drained before start"))
		}
		t.queue = nil
		s.setQueueGauges(t)
	}
	s.queued = 0
	s.cond.Broadcast()
	s.mu.Unlock()

	// Grace period for in-flight jobs, then cancel them; runJob observes
	// the cancellation at the next phase boundary, stages checkpoints
	// out and suspends.
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.runCancel()
		<-done
	}
	s.hub.Event(nil, "server.drained")
}

// Close drains (if not already draining) and stops the workers. The
// server accepts no further calls to Submit afterwards.
func (s *Server) Close() {
	s.Drain()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.runCancel()
	s.wg.Wait()
}

// worker is one executor: it pulls jobs off the tenant queues
// round-robin and runs them until the server drains or closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job := s.next()
		if job == nil {
			return
		}
		s.runJob(job)
	}
}

// next blocks until a job is dispatchable, returning nil at drain/close.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || s.draining {
			return nil
		}
		if job := s.dequeueLocked(); job != nil {
			job.state = StateRunning
			job.started = time.Now()
			s.inflight++
			s.hub.Gauge("server_inflight_jobs").Set(int64(s.inflight))
			return job
		}
		s.cond.Wait()
	}
}

// finish transitions a job out of running. Exactly one of the terminal
// paths is taken; the quota tokens the job held are returned either way.
func (s *Server) finish(job *Job, res *mrscan.Result, labels []int, runErr error) {
	s.mu.Lock()
	defer func() {
		s.inflight--
		s.hub.Gauge("server_inflight_jobs").Set(int64(s.inflight))
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	if res != nil {
		job.completed = append([]string(nil), res.CompletedPhases...)
		job.restored = append([]string(nil), res.RestoredPhases...)
		job.retries = res.Times.Retries()
	}
	if runErr == nil {
		job.state = StateCompleted
		job.finished = time.Now()
		job.labels = labels
		job.numClusters = res.NumClusters
		s.releaseTokensLocked(job)
		s.lat.add(job.finished.Sub(job.started))
		s.hub.Counter("server_jobs_completed_total", "tenant", job.tenant).Inc()
		s.hub.Histogram("server_job_latency_seconds", nil, "tenant", job.tenant).
			Observe(job.finished.Sub(job.started).Seconds())
		s.hub.Event(nil, "server.completed", telemetry.String("tenant", job.tenant),
			telemetry.String("job", job.id))
		s.tenantLocked(job.tenant).breaker.recordSuccess()
		s.global.recordSuccess()
		s.jr.setState(job.id, string(StateCompleted))
		return
	}

	drained := s.draining && errors.Is(runErr, context.Canceled)
	fatal := faultinject.IsFatal(runErr)
	switch {
	case drained && s.jr.enabled():
		// Drain cancelled the run at a phase boundary; the checkpoints
		// written before the cut are staged. Suspend for the next
		// instance to resume.
		s.suspendLocked(job, runErr)
	case fatal && s.jr.enabled() && !job.fatalRetried && !s.draining:
		// A fatal fault models the job's process dying (a worker kill).
		// The durable checkpoints survive, so requeue the job once with
		// Resume — the serving analogue of ALPS restarting a dead node.
		job.fatalRetried = true
		job.resumed = true
		job.state = StateQueued
		s.hub.Counter("server_jobs_resumed_total", "tenant", job.tenant).Inc()
		s.hub.Event(nil, "server.resumed", telemetry.String("tenant", job.tenant),
			telemetry.String("job", job.id), telemetry.String("cause", "fatal-fault"))
		t := s.tenantLocked(job.tenant)
		t.queue = append([]*Job{job}, t.queue...) // resume ahead of new work
		s.queued++
		s.setQueueGauges(t)
	default:
		s.failLocked(job, runErr)
	}
}

// failLocked marks a job loudly failed and updates breakers.
func (s *Server) failLocked(job *Job, err error) {
	job.state = StateFailed
	job.finished = time.Now()
	job.err = err
	s.releaseTokensLocked(job)
	s.hub.Counter("server_jobs_failed_total", "tenant", job.tenant).Inc()
	s.hub.Event(nil, "server.failed", telemetry.String("tenant", job.tenant),
		telemetry.String("job", job.id), telemetry.String("error", err.Error()))
	now := time.Now()
	if s.tenantLocked(job.tenant).breaker.recordFailure(now) {
		s.hub.Event(nil, "server.breaker-open", telemetry.String("tenant", job.tenant))
	}
	if s.global.recordFailure(now) {
		s.hub.Event(nil, "server.breaker-open", telemetry.String("tenant", "*global*"))
	}
	s.jr.setState(job.id, string(StateFailed))
}

// suspendLocked parks a job for a future server instance to resume.
func (s *Server) suspendLocked(job *Job, cause error) {
	job.state = StateSuspended
	job.err = cause
	s.releaseTokensLocked(job)
	s.hub.Counter("server_jobs_suspended_total", "tenant", job.tenant).Inc()
	s.hub.Event(nil, "server.suspended", telemetry.String("tenant", job.tenant),
		telemetry.String("job", job.id))
	s.jr.setState(job.id, string(StateSuspended))
}

// recover re-admits every non-terminal journaled job left by a previous
// server instance on the same state directory. Recovered jobs bypass
// admission control — they were admitted once — but re-acquire their
// quota tokens so subsequent admissions see honest accounting.
func (s *Server) recover() error {
	recovered, maxSeq, err := s.jr.recoverJobs()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq = maxSeq
	for _, r := range recovered {
		job := &Job{
			id:     r.id,
			tenant: r.spec.Tenant,
			spec: JobSpec{
				Tenant: r.spec.Tenant, Points: r.points, Eps: r.spec.Eps,
				MinPts: r.spec.MinPts, Leaves: r.spec.Leaves,
				Deadline: time.Duration(r.spec.DeadlineNS), NoDegrade: r.spec.NoDegrade,
			},
			state:      StateQueued,
			degraded:   r.spec.Degraded,
			sampleRate: r.spec.SampleRate,
			resumed:    true,
			submitted:  time.Now(),
			hub:        telemetry.New(nil),
		}
		t := s.tenantLocked(job.tenant)
		t.tokens += int64(len(job.spec.Points))
		s.enqueueLocked(job)
		s.hub.Counter("server_jobs_resumed_total", "tenant", job.tenant).Inc()
		s.hub.Event(nil, "server.resumed", telemetry.String("tenant", job.tenant),
			telemetry.String("job", job.id), telemetry.String("cause", "restart"))
	}
	s.cond.Broadcast()
	return nil
}

// runJob executes one job end to end: provision a fresh simulated file
// system, stage the (possibly subsampled) input, resume from staged
// checkpoints if the job was suspended, run the pipeline under the job
// deadline, and land the result in exactly one terminal state.
func (s *Server) runJob(job *Job) {
	ctx := s.runCtx
	deadline := job.spec.Deadline
	if deadline <= 0 {
		deadline = s.cfg.JobTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	fs := lustre.New(lustre.Titan(), nil)
	runPts := job.spec.Points
	var sampled []int32
	if job.degraded {
		runPts, sampled = subsample(job.spec.Points, job.sampleRate, jobSeed(job.id))
	}
	if err := ptio.WriteDataset(fs.Create("input.mrsc"), runPts, false); err != nil {
		s.finish(job, nil, nil, fmt.Errorf("server: staging input: %w", err))
		return
	}

	cfg := mrscan.Default(job.spec.Eps, effectiveMinPts(job), job.spec.Leaves)
	cfg.IncludeNoise = true
	cfg.Retry = s.cfg.Retry
	cfg.FaultPlan = job.spec.FaultPlan
	cfg.Telemetry = job.hub
	cfg.Checkpoint = s.jr.enabled()
	if job.resumed && s.jr.enabled() {
		if err := s.jr.stageIn(fs, job.id); err != nil {
			s.finish(job, nil, nil, fmt.Errorf("server: staging checkpoint state in: %w", err))
			return
		}
		cfg.Resume = true
	}

	res, runErr := mrscan.RunContext(ctx, fs, "input.mrsc", "output.mrsl", cfg)
	if runErr != nil {
		if cfg.Checkpoint {
			// The snapshots written before the abort are what a resumed
			// run restarts from — stage them out even (especially) on
			// failure.
			if serr := s.jr.stageOut(fs, job.id); serr != nil {
				runErr = errors.Join(runErr, fmt.Errorf("server: staging checkpoint state out: %w", serr))
			}
		}
		s.finish(job, res, nil, runErr)
		return
	}

	labels, err := mrscan.LabelsByID(fs, res.OutputFile, runPts)
	if err != nil {
		s.finish(job, res, nil, fmt.Errorf("server: reading output: %w", err))
		return
	}
	if job.degraded {
		labels = attachUnsampled(job.spec.Points, sampled, labels, job.spec.Eps,
			effectiveMinPts(job), job.spec.MinPts)
	}
	s.finish(job, res, labels, nil)
}
