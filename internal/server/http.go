package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// HTTP front end for the job server, mounted by cmd/mrscand:
//
//	POST /api/v1/jobs             submit → 202 {"id":...}, or a typed
//	                              rejection: 429 queue_full/quota,
//	                              503 draining/breaker
//	GET  /api/v1/jobs             list job statuses
//	GET  /api/v1/jobs/{id}        one job's status
//	GET  /api/v1/jobs/{id}/result labels of a completed job (chunked)
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 200 serving / 503 draining
//
// Streaming clustering rides alongside the batch jobs:
//
//	POST   /api/v1/streams                create → 201 {"id":...}, or
//	                                      429 stream_limit, 503 draining
//	GET    /api/v1/streams                list stream statuses
//	GET    /api/v1/streams/{id}           one stream's status
//	POST   /api/v1/streams/{id}/points    feed one tick of arrivals →
//	                                      tick stats; 429 quota applies
//	GET    /api/v1/streams/{id}/clusters  cluster summary (ids + sizes)
//	GET    /api/v1/streams/{id}/snapshot  full labeled window (chunked)
//	DELETE /api/v1/streams/{id}           close and discard the stream
//
// Rejection bodies are {"error":..., "reason":...} with machine-
// readable reasons mirroring the typed errors, and 429s carry a
// Retry-After hint — backpressure that HTTP clients can act on.
//
// Large label payloads (job results, stream snapshots) are written
// incrementally through a fixed-size buffer rather than materialized as
// one in-memory JSON document, so a million-point result costs the
// handler kilobytes, not hundreds of megabytes.

// submitRequest is the POST body. Either inline points or a generated
// dataset must be given.
type submitRequest struct {
	Tenant string  `json:"tenant"`
	Eps    float64 `json:"eps"`
	MinPts int     `json:"min_pts"`
	Leaves int     `json:"leaves,omitempty"`
	// DeadlineMS overrides the server's per-job timeout (milliseconds).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoDegrade opts out of degraded mode for this job.
	NoDegrade bool `json:"no_degrade,omitempty"`
	// Points carries the dataset inline…
	Points []pointJSON `json:"points,omitempty"`
	// …or Dataset asks the server to generate one of the paper's
	// distributions (handy for curl-driven exploration and soak tests).
	Dataset *datasetJSON `json:"dataset,omitempty"`
}

type pointJSON struct {
	ID uint64  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type datasetJSON struct {
	Dist string `json:"dist"` // twitter | sdss | uniform
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

type errorJSON struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the HTTP API over the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/v1/streams", s.handleStreamCreate)
	mux.HandleFunc("GET /api/v1/streams", s.handleStreamList)
	mux.HandleFunc("GET /api/v1/streams/{id}", s.handleStreamStatus)
	mux.HandleFunc("POST /api/v1/streams/{id}/points", s.handleStreamTick)
	mux.HandleFunc("GET /api/v1/streams/{id}/clusters", s.handleStreamClusters)
	mux.HandleFunc("GET /api/v1/streams/{id}/snapshot", s.handleStreamSnapshot)
	mux.HandleFunc("DELETE /api/v1/streams/{id}", s.handleStreamDelete)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "invalid JSON: " + err.Error(), Reason: "bad_request"})
		return
	}
	spec := JobSpec{
		Tenant: req.Tenant, Eps: req.Eps, MinPts: req.MinPts,
		Leaves: req.Leaves, NoDegrade: req.NoDegrade,
	}
	if req.DeadlineMS > 0 {
		spec.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	switch {
	case len(req.Points) > 0:
		spec.Points = make([]geom.Point, len(req.Points))
		for i, p := range req.Points {
			spec.Points[i] = geom.Point{ID: p.ID, X: p.X, Y: p.Y}
		}
	case req.Dataset != nil:
		pts, err := generate(*req.Dataset)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error(), Reason: "bad_request"})
			return
		}
		spec.Points = pts
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "submission needs points or dataset", Reason: "bad_request"})
		return
	}

	id, err := s.Submit(spec)
	if err != nil {
		code, reason := rejectionStatus(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorJSON{Error: err.Error(), Reason: reason})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// rejectionStatus maps the typed admission errors onto HTTP semantics.
func rejectionStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable, "breaker"
	case errors.Is(err, ErrStreamLimit):
		return http.StatusTooManyRequests, "stream_limit"
	case errors.Is(err, ErrUnknownStream):
		return http.StatusNotFound, "unknown_stream"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

func generate(d datasetJSON) ([]geom.Point, error) {
	if d.N <= 0 || d.N > 10_000_000 {
		return nil, fmt.Errorf("dataset n must be in (0, 10M], got %d", d.N)
	}
	switch d.Dist {
	case "twitter":
		return dataset.Twitter(d.N, d.Seed), nil
	case "sdss":
		return dataset.SDSS(d.N, d.Seed), nil
	case "uniform":
		return dataset.Uniform(d.N, d.Seed, geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}), nil
	default:
		return nil, fmt.Errorf("unknown dataset dist %q (want twitter|sdss|uniform)", d.Dist)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error(), Reason: "unknown_job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	labels, err := s.Result(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error(), Reason: "unknown_job"})
		return
	case errors.Is(err, ErrJobNotFinished):
		writeJSON(w, http.StatusConflict, errorJSON{Error: err.Error(), Reason: "not_finished"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error(), Reason: "failed"})
		return
	}
	st, _ := s.Status(id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 32<<10)
	fmt.Fprintf(bw, `{"id":%q,"num_clusters":%d,"degraded":%t,"sample_rate":%s,"labels":`,
		id, st.NumClusters, st.Degraded,
		strconv.FormatFloat(st.SampleRate, 'g', -1, 64))
	writeLabelArray(bw, labels)
	bw.WriteString("}\n")
	bw.Flush()
}

// writeLabelArray streams an int array through bw; the bufio layer
// flushes to the client every time its fixed buffer fills, so the
// response never exists in memory all at once.
func writeLabelArray(bw *bufio.Writer, labels []int) {
	bw.WriteByte('[')
	var scratch [20]byte
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.Write(strconv.AppendInt(scratch[:0], int64(l), 10))
	}
	bw.WriteByte(']')
}

// createStreamRequest is the POST /api/v1/streams body.
type createStreamRequest struct {
	Tenant             string  `json:"tenant"`
	Name               string  `json:"name,omitempty"`
	Eps                float64 `json:"eps"`
	MinPts             int     `json:"min_pts"`
	WindowTicks        int     `json:"window_ticks"`
	SubsampleThreshold int     `json:"subsample_threshold,omitempty"`
	SubsampleRate      float64 `json:"subsample_rate,omitempty"`
	ReanchorEvery      int     `json:"reanchor_every,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
}

// tickStatsJSON is the POST .../points response: what the tick did.
type tickStatsJSON struct {
	Tick         int     `json:"tick"`
	Arrivals     int     `json:"arrivals"`
	Expired      int     `json:"expired"`
	DirtyCells   int     `json:"dirty_cells"`
	WindowPoints int     `json:"window_points"`
	NumClusters  int     `json:"num_clusters"`
	Reanchored   bool    `json:"reanchored"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// streamError writes a stream-API error with the right HTTP semantics.
func streamError(w http.ResponseWriter, err error) {
	code, reason := rejectionStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, errorJSON{Error: err.Error(), Reason: reason})
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req createStreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "invalid JSON: " + err.Error(), Reason: "bad_request"})
		return
	}
	id, err := s.CreateStream(StreamSpec{
		Tenant: req.Tenant, Name: req.Name, Eps: req.Eps, MinPts: req.MinPts,
		WindowTicks: req.WindowTicks, SubsampleThreshold: req.SubsampleThreshold,
		SubsampleRate: req.SubsampleRate, ReanchorEvery: req.ReanchorEvery,
		Seed: req.Seed,
	})
	if err != nil {
		streamError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Streams())
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.StreamStatus(r.PathValue("id"))
	if err != nil {
		streamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStreamTick(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Points []pointJSON `json:"points"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "invalid JSON: " + err.Error(), Reason: "bad_request"})
		return
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Point{ID: p.ID, X: p.X, Y: p.Y}
	}
	stats, err := s.StreamTick(r.PathValue("id"), pts)
	if err != nil {
		streamError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tickStatsJSON{
		Tick: stats.Tick, Arrivals: stats.Arrivals, Expired: stats.Expired,
		DirtyCells: stats.DirtyCells, WindowPoints: stats.WindowPoints,
		NumClusters: stats.Clusters, Reanchored: stats.Reanchored,
		ElapsedMS: float64(stats.Elapsed.Microseconds()) / 1000,
	})
}

func (s *Server) handleStreamClusters(w http.ResponseWriter, r *http.Request) {
	snap, err := s.StreamSnapshot(r.PathValue("id"))
	if err != nil {
		streamError(w, err)
		return
	}
	sizes := make(map[int]int)
	noise := 0
	for _, l := range snap.Labels {
		if l < 0 {
			noise++
		} else {
			sizes[l]++
		}
	}
	type clusterJSON struct {
		ID   int `json:"id"`
		Size int `json:"size"`
	}
	clusters := make([]clusterJSON, 0, len(sizes))
	for id, n := range sizes {
		clusters = append(clusters, clusterJSON{ID: id, Size: n})
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].ID < clusters[b].ID })
	writeJSON(w, http.StatusOK, map[string]any{
		"tick":          snap.Tick,
		"window_points": len(snap.Points),
		"num_clusters":  snap.NumClusters,
		"noise":         noise,
		"clusters":      clusters,
	})
}

// handleStreamSnapshot streams the full labeled window in chunks, the
// same way job results are served: point records are appended to a
// fixed-size buffer that flushes as it fills.
func (s *Server) handleStreamSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.StreamSnapshot(id)
	if err != nil {
		streamError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 32<<10)
	fmt.Fprintf(bw, `{"id":%q,"tick":%d,"num_clusters":%d,"points":[`,
		id, snap.Tick, snap.NumClusters)
	var scratch []byte
	for i, p := range snap.Points {
		if i > 0 {
			bw.WriteByte(',')
		}
		scratch = scratch[:0]
		scratch = append(scratch, `{"id":`...)
		scratch = strconv.AppendUint(scratch, p.ID, 10)
		scratch = append(scratch, `,"x":`...)
		scratch = strconv.AppendFloat(scratch, p.X, 'g', -1, 64)
		scratch = append(scratch, `,"y":`...)
		scratch = strconv.AppendFloat(scratch, p.Y, 'g', -1, 64)
		scratch = append(scratch, `,"label":`...)
		scratch = strconv.AppendInt(scratch, int64(snap.Labels[i]), 10)
		scratch = append(scratch, '}')
		bw.Write(scratch)
	}
	bw.WriteString("]}\n")
	bw.Flush()
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.CloseStream(r.PathValue("id")); err != nil {
		streamError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.hub.Metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "serving"})
}
