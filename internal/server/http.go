package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// HTTP front end for the job server, mounted by cmd/mrscand:
//
//	POST /api/v1/jobs             submit → 202 {"id":...}, or a typed
//	                              rejection: 429 queue_full/quota,
//	                              503 draining/breaker
//	GET  /api/v1/jobs             list job statuses
//	GET  /api/v1/jobs/{id}        one job's status
//	GET  /api/v1/jobs/{id}/result labels of a completed job
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 200 serving / 503 draining
//
// Rejection bodies are {"error":..., "reason":...} with machine-
// readable reasons mirroring the typed errors, and 429s carry a
// Retry-After hint — backpressure that HTTP clients can act on.

// submitRequest is the POST body. Either inline points or a generated
// dataset must be given.
type submitRequest struct {
	Tenant string  `json:"tenant"`
	Eps    float64 `json:"eps"`
	MinPts int     `json:"min_pts"`
	Leaves int     `json:"leaves,omitempty"`
	// DeadlineMS overrides the server's per-job timeout (milliseconds).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoDegrade opts out of degraded mode for this job.
	NoDegrade bool `json:"no_degrade,omitempty"`
	// Points carries the dataset inline…
	Points []pointJSON `json:"points,omitempty"`
	// …or Dataset asks the server to generate one of the paper's
	// distributions (handy for curl-driven exploration and soak tests).
	Dataset *datasetJSON `json:"dataset,omitempty"`
}

type pointJSON struct {
	ID uint64  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

type datasetJSON struct {
	Dist string `json:"dist"` // twitter | sdss | uniform
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

type errorJSON struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// Handler returns the HTTP API over the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "invalid JSON: " + err.Error(), Reason: "bad_request"})
		return
	}
	spec := JobSpec{
		Tenant: req.Tenant, Eps: req.Eps, MinPts: req.MinPts,
		Leaves: req.Leaves, NoDegrade: req.NoDegrade,
	}
	if req.DeadlineMS > 0 {
		spec.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	switch {
	case len(req.Points) > 0:
		spec.Points = make([]geom.Point, len(req.Points))
		for i, p := range req.Points {
			spec.Points[i] = geom.Point{ID: p.ID, X: p.X, Y: p.Y}
		}
	case req.Dataset != nil:
		pts, err := generate(*req.Dataset)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error(), Reason: "bad_request"})
			return
		}
		spec.Points = pts
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "submission needs points or dataset", Reason: "bad_request"})
		return
	}

	id, err := s.Submit(spec)
	if err != nil {
		code, reason := rejectionStatus(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, errorJSON{Error: err.Error(), Reason: reason})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// rejectionStatus maps the typed admission errors onto HTTP semantics.
func rejectionStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, "quota"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable, "breaker"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

func generate(d datasetJSON) ([]geom.Point, error) {
	if d.N <= 0 || d.N > 10_000_000 {
		return nil, fmt.Errorf("dataset n must be in (0, 10M], got %d", d.N)
	}
	switch d.Dist {
	case "twitter":
		return dataset.Twitter(d.N, d.Seed), nil
	case "sdss":
		return dataset.SDSS(d.N, d.Seed), nil
	case "uniform":
		return dataset.Uniform(d.N, d.Seed, geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}), nil
	default:
		return nil, fmt.Errorf("unknown dataset dist %q (want twitter|sdss|uniform)", d.Dist)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error(), Reason: "unknown_job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	labels, err := s.Result(id)
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, errorJSON{Error: err.Error(), Reason: "unknown_job"})
		return
	case errors.Is(err, ErrJobNotFinished):
		writeJSON(w, http.StatusConflict, errorJSON{Error: err.Error(), Reason: "not_finished"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error(), Reason: "failed"})
		return
	}
	st, _ := s.Status(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":           id,
		"num_clusters": st.NumClusters,
		"degraded":     st.Degraded,
		"sample_rate":  st.SampleRate,
		"labels":       labels,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.hub.Metrics.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "serving"})
}
