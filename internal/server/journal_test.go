package server

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/lustre"
	"repro/internal/telemetry"
)

// journalOnLustre builds a journal over a fresh simulated FS and
// appends the given state transitions.
func journalOnLustre(t *testing.T, hub *telemetry.Hub, transitions [][2]string) (*lustre.FS, *journal) {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	j := newJournal(LustreJournalFS(fs), "state", hub)
	for _, tr := range transitions {
		if err := j.setState(tr[0], tr[1]); err != nil {
			t.Fatalf("setState(%s, %s): %v", tr[0], tr[1], err)
		}
	}
	return fs, j
}

func readLog(t *testing.T, j *journal) []byte {
	t.Helper()
	raw, err := j.fs.ReadFile(j.logPath())
	if err != nil {
		t.Fatalf("reading log: %v", err)
	}
	return raw
}

func writeLog(t *testing.T, j *journal, raw []byte) {
	t.Helper()
	if err := j.fs.WriteFileSync(j.logPath(), raw); err != nil {
		t.Fatalf("rewriting log: %v", err)
	}
}

// TestJournalTornTailTolerated cuts the final record short — the
// signature of a crash mid-append — and requires replay to truncate it,
// count it, repair the log crash-safely, and keep every earlier record.
func TestJournalTornTailTolerated(t *testing.T) {
	hub := telemetry.New(nil)
	_, j := journalOnLustre(t, hub, [][2]string{
		{"job-000001", "queued"},
		{"job-000001", "running"},
		{"job-000002", "queued"},
	})
	raw := readLog(t, j)
	writeLog(t, j, raw[:len(raw)-3]) // tear the last record mid-payload

	states, _, err := j.replayLog(true)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	want := map[string]State{"job-000001": StateRunning}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("states after torn-tail replay = %v, want %v", states, want)
	}
	if got := hub.Counter("server_journal_torn_tail_total").Value(); got != 1 {
		t.Fatalf("server_journal_torn_tail_total = %d, want 1", got)
	}

	// The repair is durable: a second replay sees a clean log.
	states2, _, err := j.replayLog(true)
	if err != nil {
		t.Fatalf("replay after repair: %v", err)
	}
	if !reflect.DeepEqual(states2, want) {
		t.Fatalf("states after repair = %v, want %v", states2, want)
	}
	if got := hub.Counter("server_journal_torn_tail_total").Value(); got != 1 {
		t.Fatalf("torn tail counted again after repair: counter = %d, want 1", got)
	}
}

// TestJournalTornMidHeaderTolerated tears inside the final record's
// header rather than its payload.
func TestJournalTornMidHeaderTolerated(t *testing.T) {
	_, j := journalOnLustre(t, telemetry.New(nil), [][2]string{
		{"job-000001", "queued"},
		{"job-000002", "queued"},
	})
	raw := readLog(t, j)
	recLen := len(raw) / 2
	writeLog(t, j, raw[:recLen+recHeaderSize/2])

	states, _, err := j.replayLog(true)
	if err != nil {
		t.Fatalf("replay with torn header: %v", err)
	}
	if _, ok := states["job-000001"]; !ok || len(states) != 1 {
		t.Fatalf("states = %v, want only job-000001", states)
	}
}

// TestJournalInteriorCorruptionFailsLoudly damages a record that has a
// valid record after it. A torn append cannot explain that, so the
// journal must refuse to replay rather than silently drop an
// acknowledged transition.
func TestJournalInteriorCorruptionFailsLoudly(t *testing.T) {
	_, j := journalOnLustre(t, telemetry.New(nil), [][2]string{
		{"job-000001", "queued"},
		{"job-000002", "queued"},
		{"job-000002", "completed"},
	})
	raw := readLog(t, j)
	raw[recHeaderSize+2] ^= 0xff // flip a byte inside the first payload
	writeLog(t, j, raw)

	_, _, err := j.replayLog(true)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("replay of interior-corrupt log: err = %v, want ErrJournalCorrupt", err)
	}
	// The audit surface agrees.
	if _, _, err := JournalStates(j.fs, "state"); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("JournalStates: err = %v, want ErrJournalCorrupt", err)
	}
}

// TestJournalReplayIdempotentUnderCrash loses power during the
// torn-tail repair itself, recovers, replays again, and requires the
// same end state as an uninterrupted replay — across many seeds, so the
// crash lands on every step of the repair (tmp write, fsync, rename,
// dir sync).
func TestJournalReplayIdempotentUnderCrash(t *testing.T) {
	want := map[string]State{"job-000001": StateRunning}
	for seed := int64(1); seed <= 20; seed++ {
		fs, j := journalOnLustre(t, telemetry.New(nil), [][2]string{
			{"job-000001", "queued"},
			{"job-000001", "running"},
			{"job-000002", "queued"},
		})
		raw := readLog(t, j)
		writeLog(t, j, raw[:len(raw)-2])

		fs.EnableCrashSim(seed)
		// The repair is 5 durability ops: tmp create, write, fsync,
		// rename, dir sync. Land the crash on each in turn.
		fs.ArmCrash(1 + (seed-1)%5)
		_, _, err := j.replayLog(true)
		if err == nil {
			t.Fatalf("seed %d: repair survived an armed crash", seed)
		}
		if !fs.Crashed() {
			t.Fatalf("seed %d: replay failed without a crash: %v", seed, err)
		}
		if _, err := fs.Recover(); err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}

		j2 := newJournal(LustreJournalFS(fs), "state", telemetry.New(nil))
		states, _, err := j2.replayLog(true)
		if err != nil {
			t.Fatalf("seed %d: replay after crashed repair: %v", seed, err)
		}
		if !reflect.DeepEqual(states, want) {
			t.Fatalf("seed %d: states = %v, want %v", seed, states, want)
		}
		// And the second repair must itself be durable and idempotent.
		states2, _, err := j2.replayLog(true)
		if err != nil || !reflect.DeepEqual(states2, want) {
			t.Fatalf("seed %d: third replay: states = %v err = %v", seed, states2, err)
		}
	}
}
