package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/geom"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Stream serving: tenants hold long-lived sliding-window clustering
// streams next to their batch jobs. Admission reuses the tenant
// machinery — the drain gate, the per-tenant point quota (a stream's
// live window holds quota tokens exactly like a queued job's input;
// arrivals charge tokens, expiries refund them), and a per-tenant cap
// on concurrent streams.
//
// Durability differs from jobs by design: instead of journal + replay,
// every tick persists the engine's WindowState through a
// checkpoint.Store under StateDir/streams/<id>/ (atomic write-then-
// rename, CRC-verified). The window is therefore crash-consistent by
// construction — there is nothing to stage at drain time, and a new
// server on the same directory restores every stream before it starts
// serving. Stream state lives on the real filesystem (checkpoint.DirFS);
// the crash-simulating JournalFS covers only the job journal.

// Stream-specific typed errors.
var (
	// ErrUnknownStream: no stream with that ID.
	ErrUnknownStream = errors.New("server: unknown stream")
	// ErrStreamLimit: the tenant is at its concurrent-stream cap.
	ErrStreamLimit = errors.New("server: stream limit reached")
)

// StreamSpec describes one stream creation.
type StreamSpec struct {
	// Tenant is the owning principal (empty means "default").
	Tenant string
	// Name is an optional human label recorded on status output.
	Name string
	// Eps, MinPts, WindowTicks parameterize the engine (stream.Config).
	Eps         float64
	MinPts      int
	WindowTicks int
	// SubsampleThreshold/SubsampleRate enable approximate ε-queries for
	// over-dense cells (0 threshold = exact).
	SubsampleThreshold int
	SubsampleRate      float64
	// ReanchorEvery forces a periodic full recompute (0 disables).
	ReanchorEvery int
	// Seed feeds the subsampling hash.
	Seed int64
}

// StreamStatus is a point-in-time snapshot of one stream.
type StreamStatus struct {
	ID           string  `json:"id"`
	Tenant       string  `json:"tenant"`
	Name         string  `json:"name,omitempty"`
	Eps          float64 `json:"eps"`
	MinPts       int     `json:"min_pts"`
	WindowTicks  int     `json:"window_ticks"`
	Tick         int     `json:"tick"`
	WindowPoints int     `json:"window_points"`
	NumClusters  int     `json:"num_clusters"`
	Recovered    bool    `json:"recovered,omitempty"`
}

// streamState is the server-side record of one stream. s.mu guards the
// registry and token accounting; st.mu serializes engine access so a
// slow snapshot never blocks the whole server.
type streamState struct {
	id        string
	spec      StreamSpec
	recovered bool

	mu    sync.Mutex
	eng   *stream.Engine
	store *checkpoint.Store // nil without a StateDir
}

// persistedStreamSpec is the gob image of a stream's configuration,
// saved as the "spec" phase of its checkpoint store.
type persistedStreamSpec struct {
	Tenant             string
	Name               string
	Eps                float64
	MinPts             int
	WindowTicks        int
	SubsampleThreshold int
	SubsampleRate      float64
	ReanchorEvery      int
	Seed               int64
}

func (p persistedStreamSpec) spec() StreamSpec {
	return StreamSpec{
		Tenant: p.Tenant, Name: p.Name, Eps: p.Eps, MinPts: p.MinPts,
		WindowTicks: p.WindowTicks, SubsampleThreshold: p.SubsampleThreshold,
		SubsampleRate: p.SubsampleRate, ReanchorEvery: p.ReanchorEvery, Seed: p.Seed,
	}
}

func fromSpec(sp StreamSpec) persistedStreamSpec {
	return persistedStreamSpec{
		Tenant: sp.Tenant, Name: sp.Name, Eps: sp.Eps, MinPts: sp.MinPts,
		WindowTicks: sp.WindowTicks, SubsampleThreshold: sp.SubsampleThreshold,
		SubsampleRate: sp.SubsampleRate, ReanchorEvery: sp.ReanchorEvery, Seed: sp.Seed,
	}
}

// engineConfig maps a StreamSpec onto the engine's Config. The engine
// reports metrics on the server hub labeled by stream ID.
func (s *Server) engineConfig(id string, sp StreamSpec) stream.Config {
	return stream.Config{
		Eps: sp.Eps, MinPts: sp.MinPts, WindowTicks: sp.WindowTicks,
		SubsampleThreshold: sp.SubsampleThreshold, SubsampleRate: sp.SubsampleRate,
		ReanchorEvery: sp.ReanchorEvery, Seed: sp.Seed,
		Name: id, Telemetry: s.hub,
	}
}

// streamDir is a stream's durable directory under the state dir.
func (s *Server) streamDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "streams", id)
}

// CreateStream admits and registers a new stream, durably persisting
// its spec before the ID is returned.
func (s *Server) CreateStream(sp StreamSpec) (string, error) {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if _, err := stream.New(stream.Config{
		Eps: sp.Eps, MinPts: sp.MinPts, WindowTicks: sp.WindowTicks,
		SubsampleThreshold: sp.SubsampleThreshold, SubsampleRate: sp.SubsampleRate,
		ReanchorEvery: sp.ReanchorEvery,
	}); err != nil {
		return "", err
	}

	s.mu.Lock()
	reject := func(reason string, err error) (string, error) {
		s.hub.Counter("server_streams_rejected_total", "tenant", sp.Tenant, "reason", reason).Inc()
		s.mu.Unlock()
		return "", err
	}
	if s.draining || s.closed {
		return reject("draining", fmt.Errorf("%w: tenant %s", ErrDraining, sp.Tenant))
	}
	if s.cfg.StreamsPerTenant > 0 {
		active := 0
		for _, st := range s.streams {
			if st.spec.Tenant == sp.Tenant {
				active++
			}
		}
		if active >= s.cfg.StreamsPerTenant {
			return reject("stream_limit", fmt.Errorf("%w: tenant %s at %d streams",
				ErrStreamLimit, sp.Tenant, active))
		}
	}
	s.streamSeq++
	id := fmt.Sprintf("stream-%06d", s.streamSeq)
	st := &streamState{id: id, spec: sp}
	eng, err := stream.New(s.engineConfig(id, sp))
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	st.eng = eng
	s.streams[id] = st
	s.hub.Counter("server_streams_created_total", "tenant", sp.Tenant).Inc()
	s.hub.Gauge("server_streams_active", "tenant", sp.Tenant).Add(1)
	s.mu.Unlock()

	if s.cfg.StateDir != "" {
		store, err := s.openStreamStore(id)
		if err == nil {
			err = store.Save("spec", fromSpec(sp))
		}
		if err != nil {
			s.mu.Lock()
			delete(s.streams, id)
			s.hub.Gauge("server_streams_active", "tenant", sp.Tenant).Add(-1)
			s.mu.Unlock()
			return "", fmt.Errorf("server: persisting stream spec: %w", err)
		}
		st.mu.Lock()
		st.store = store
		st.mu.Unlock()
	}
	s.hub.Event(nil, "server.stream-created", telemetry.String("tenant", sp.Tenant),
		telemetry.String("stream", id))
	return id, nil
}

func (s *Server) openStreamStore(id string) (*checkpoint.Store, error) {
	fs, err := checkpoint.DirFS(s.streamDir(id))
	if err != nil {
		return nil, err
	}
	store := checkpoint.NewStore(fs, id)
	store.SetTelemetry(s.hub)
	return store, nil
}

// lookupStream fetches a stream under s.mu.
func (s *Server) lookupStream(id string) (*streamState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownStream, id)
	}
	return st, nil
}

// StreamTick feeds one tick of arrivals into a stream. Admission gates
// apply per tick: draining rejects new points, and the tenant's point
// quota is charged for arrivals and refunded for expiries, so a
// stream's live window counts against the same budget as queued jobs.
// On success the window state is durably checkpointed before returning.
func (s *Server) StreamTick(id string, pts []geom.Point) (stream.TickStats, error) {
	st, err := s.lookupStream(id)
	if err != nil {
		return stream.TickStats{}, err
	}
	tenant := st.spec.Tenant

	s.mu.Lock()
	if s.draining || s.closed {
		s.hub.Counter("server_streams_rejected_total", "tenant", tenant, "reason", "draining").Inc()
		s.mu.Unlock()
		return stream.TickStats{}, fmt.Errorf("%w: tenant %s", ErrDraining, tenant)
	}
	t := s.tenantLocked(tenant)
	need := int64(len(pts))
	if s.cfg.TenantQuota > 0 && t.tokens+need > s.cfg.TenantQuota {
		s.hub.Counter("server_streams_rejected_total", "tenant", tenant, "reason", "quota").Inc()
		s.mu.Unlock()
		return stream.TickStats{}, fmt.Errorf("%w: tenant %s holds %d of %d points, tick needs %d",
			ErrQuotaExceeded, tenant, t.tokens, s.cfg.TenantQuota, need)
	}
	t.tokens += need
	s.hub.Gauge("server_tenant_tokens", "tenant", tenant).Set(t.tokens)
	s.mu.Unlock()

	st.mu.Lock()
	stats, err := st.eng.Tick(pts)
	var saveErr error
	if err == nil && st.store != nil {
		saveErr = st.store.Save("window", st.eng.WindowState())
	}
	st.mu.Unlock()

	// Settle the quota: a rejected tick refunds the whole charge; a
	// successful one keeps (arrivals - expiries).
	s.mu.Lock()
	refund := need
	if err == nil {
		refund = int64(stats.Expired)
	}
	t.tokens -= refund
	if t.tokens < 0 {
		t.tokens = 0
	}
	s.hub.Gauge("server_tenant_tokens", "tenant", tenant).Set(t.tokens)
	s.mu.Unlock()
	if err != nil {
		return stream.TickStats{}, err
	}
	if saveErr != nil {
		return stats, fmt.Errorf("server: checkpointing stream %s: %w", id, saveErr)
	}
	s.hub.Counter("server_stream_points_total", "tenant", tenant).Add(int64(len(pts)))
	s.hub.Counter("server_stream_ticks_total", "tenant", tenant).Inc()
	return stats, nil
}

// StreamSnapshot returns the stream's full labeled window.
func (s *Server) StreamSnapshot(id string) (stream.Snapshot, error) {
	st, err := s.lookupStream(id)
	if err != nil {
		return stream.Snapshot{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.eng.Snapshot(), nil
}

// StreamStatus returns one stream's status.
func (s *Server) StreamStatus(id string) (StreamStatus, error) {
	st, err := s.lookupStream(id)
	if err != nil {
		return StreamStatus{}, err
	}
	return s.streamStatus(st), nil
}

func (s *Server) streamStatus(st *streamState) StreamStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStatus{
		ID: st.id, Tenant: st.spec.Tenant, Name: st.spec.Name,
		Eps: st.spec.Eps, MinPts: st.spec.MinPts, WindowTicks: st.spec.WindowTicks,
		Tick:         st.eng.TickIndex(),
		WindowPoints: st.eng.Len(),
		NumClusters:  st.eng.NumClusters(),
		Recovered:    st.recovered,
	}
}

// Streams lists every stream's status, sorted by ID.
func (s *Server) Streams() []StreamStatus {
	s.mu.Lock()
	states := make([]*streamState, 0, len(s.streams))
	for _, st := range s.streams {
		states = append(states, st)
	}
	s.mu.Unlock()
	out := make([]StreamStatus, len(states))
	for i, st := range states {
		out[i] = s.streamStatus(st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// CloseStream tears a stream down: its quota tokens are refunded and
// its durable state removed. Closing is allowed while draining — it
// releases resources rather than consuming them.
func (s *Server) CloseStream(id string) error {
	s.mu.Lock()
	st, ok := s.streams[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownStream, id)
	}
	delete(s.streams, id)
	t := s.tenantLocked(st.spec.Tenant)
	st.mu.Lock()
	t.tokens -= int64(st.eng.Len())
	st.mu.Unlock()
	if t.tokens < 0 {
		t.tokens = 0
	}
	s.hub.Gauge("server_tenant_tokens", "tenant", t.name).Set(t.tokens)
	s.hub.Gauge("server_streams_active", "tenant", st.spec.Tenant).Add(-1)
	s.mu.Unlock()

	if s.cfg.StateDir != "" {
		if err := os.RemoveAll(s.streamDir(id)); err != nil {
			return fmt.Errorf("server: removing stream state: %w", err)
		}
	}
	s.hub.Event(nil, "server.stream-closed", telemetry.String("tenant", st.spec.Tenant),
		telemetry.String("stream", id))
	return nil
}

// recoverStreams restores every stream checkpointed by a previous
// instance on the same state directory: spec and window are loaded and
// verified (CRC + manifest), the engine is rebuilt via stream.Restore —
// whose labels provably equal the pre-crash labels — and the tenant's
// quota tokens are re-acquired. A corrupt stream refuses startup
// loudly, like interior journal corruption.
func (s *Server) recoverStreams() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	root := filepath.Join(s.cfg.StateDir, "streams")
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: scanning stream state: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		store, err := s.openStreamStore(id)
		if err != nil {
			return fmt.Errorf("server: recovering stream %s: %w", id, err)
		}
		var psp persistedStreamSpec
		if err := store.Load("spec", &psp); err != nil {
			return fmt.Errorf("server: recovering stream %s spec: %w", id, err)
		}
		sp := psp.spec()
		var ws stream.WindowState
		switch err := store.Load("window", &ws); {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Created but never ticked: restore an empty window.
			ws = stream.WindowState{}
		case err != nil:
			return fmt.Errorf("server: recovering stream %s window: %w", id, err)
		}
		eng, err := stream.Restore(s.engineConfig(id, sp), ws)
		if err != nil {
			return fmt.Errorf("server: restoring stream %s: %w", id, err)
		}
		st := &streamState{id: id, spec: sp, recovered: true, eng: eng, store: store}
		s.mu.Lock()
		s.streams[id] = st
		if seq := streamSeqOf(id); seq > s.streamSeq {
			s.streamSeq = seq
		}
		t := s.tenantLocked(sp.Tenant)
		t.tokens += int64(eng.Len())
		s.hub.Gauge("server_tenant_tokens", "tenant", t.name).Set(t.tokens)
		s.hub.Counter("server_streams_recovered_total", "tenant", sp.Tenant).Inc()
		s.hub.Gauge("server_streams_active", "tenant", sp.Tenant).Add(1)
		s.mu.Unlock()
		s.hub.Event(nil, "server.stream-recovered", telemetry.String("tenant", sp.Tenant),
			telemetry.String("stream", id))
	}
	return nil
}

// streamSeqOf parses the numeric suffix of a stream ID (0 if foreign).
func streamSeqOf(id string) int {
	var seq int
	if _, err := fmt.Sscanf(id, "stream-%d", &seq); err != nil {
		return 0
	}
	return seq
}
