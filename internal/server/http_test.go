package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp, m
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp, m
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, m := postJSON(t, ts, "/api/v1/jobs",
		`{"tenant":"acme","eps":0.1,"min_pts":20,"leaves":2,"dataset":{"dist":"twitter","n":1500,"seed":9}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", m)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, m = getJSON(t, ts, "/api/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status code = %d", resp.StatusCode)
		}
		if st := m["state"]; st == string(StateCompleted) {
			break
		} else if st == string(StateFailed) {
			t.Fatalf("job failed: %v", m["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, m = getJSON(t, ts, "/api/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d body %v", resp.StatusCode, m)
	}
	labels, _ := m["labels"].([]any)
	if len(labels) != 1500 {
		t.Fatalf("result has %d labels, want 1500", len(labels))
	}

	// Metrics exposition carries the per-tenant serving counters.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"server_jobs_admitted_total", `tenant="acme"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPRejectionMapping(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Bad request: no points, no dataset.
	resp, m := postJSON(t, ts, "/api/v1/jobs", `{"tenant":"x","eps":0.1,"min_pts":5}`)
	if resp.StatusCode != http.StatusBadRequest || m["reason"] != "bad_request" {
		t.Fatalf("empty submit: status %d reason %v", resp.StatusCode, m["reason"])
	}

	// Unknown job.
	resp, _ = getJSON(t, ts, "/api/v1/jobs/job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}

	// Draining maps to 503 with the typed reason, and healthz flips.
	s.Drain()
	resp, m = postJSON(t, ts, "/api/v1/jobs",
		`{"tenant":"x","eps":0.1,"min_pts":5,"dataset":{"dist":"uniform","n":100,"seed":1}}`)
	if resp.StatusCode != http.StatusServiceUnavailable || m["reason"] != "draining" {
		t.Fatalf("draining submit: status %d reason %v", resp.StatusCode, m["reason"])
	}
	resp, _ = getJSON(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	s.Close()
}
