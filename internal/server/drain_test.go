package server

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mrscan"
	"repro/internal/quality"
)

// TestDrainSuspendsAndResumes is the SIGTERM story end to end: a job is
// killed mid-run by a drain, suspended with its checkpoints staged to
// the state directory, and a fresh server on the same directory resumes
// it from the completed-phase prefix and finishes it with labels
// matching the fault-free reference.
func TestDrainSuspendsAndResumes(t *testing.T) {
	stateDir := t.TempDir()
	s, err := New(Config{Workers: 1, StateDir: stateDir, DrainTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	pts := testPoints(2500, 21)
	spec := testSpec("acme", pts)
	// A straggler rule at the cluster phase: partition completes (and is
	// checkpointed), then the job parks for long enough that the drain
	// deadline strikes mid-run, deterministically.
	spec.FaultPlan = faultinject.New(3).Arm(mrscan.PhaseSite(mrscan.PhaseCluster),
		faultinject.Rule{Times: 1, Delay: 500 * time.Millisecond})
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Also leave a job queued behind the in-flight one: a drain must
	// suspend it too, not drop it.
	queuedID, err := s.Submit(testSpec("acme", testPoints(1000, 22)))
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the partition phase of the in-flight job has finished
	// (its span has ended on the job's private hub) so the suspension
	// has a checkpointed prefix to resume from.
	s.mu.Lock()
	hub := s.jobs[id].hub
	s.mu.Unlock()
	for start := time.Now(); ; {
		if len(hub.Trace.FindSpans("phase:"+mrscan.PhasePartition)) > 0 {
			break
		}
		if time.Since(start) > 30*time.Second {
			t.Fatal("partition phase never completed")
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain()
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSuspended {
		t.Fatalf("in-flight job after drain: state = %s (err %q), want suspended", st.State, st.Err)
	}
	if qst, _ := s.Status(queuedID); qst.State != StateSuspended {
		t.Fatalf("queued job after drain: state = %s, want suspended", qst.State)
	}
	if _, err := s.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	s.Close()

	// Restart against the same state directory: both suspended jobs are
	// re-admitted and finish.
	s2, err := New(Config{Workers: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st = waitTerminal(t, s2, id)
	if st.State != StateCompleted {
		t.Fatalf("resumed job state = %s (err %q), want completed", st.State, st.Err)
	}
	if !st.Resumed {
		t.Fatalf("restarted job not marked resumed")
	}
	if len(st.RestoredPhases) == 0 {
		t.Fatalf("resumed job restored no phases; completed=%v", st.CompletedPhases)
	}
	if qst := waitTerminal(t, s2, queuedID); qst.State != StateCompleted {
		t.Fatalf("recovered queued job state = %s (err %q)", qst.State, qst.Err)
	}

	labels, err := s2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quality.Score(referenceLabels(t, pts, spec), labels)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.995 {
		t.Fatalf("resumed job quality %.4f vs fault-free reference, want >= 0.995", q)
	}
	if got := s2.Hub().Counter("server_jobs_resumed_total", "tenant", "acme").Value(); got != 2 {
		t.Fatalf("server_jobs_resumed_total after restart = %d, want 2", got)
	}
}

// TestDrainIdle: draining a quiet server returns promptly and further
// submissions are rejected with the typed error.
func TestDrainIdle(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain of an idle server hung")
	}
	if _, err := s.Submit(testSpec("acme", testPoints(100, 1))); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	s.Close()
}

// TestRecoveryPreservesDegradedDecision: a degraded job suspended by a
// drain resumes degraded at the same sample rate — the journal carries
// the decision so the resumed run regenerates the same subsample and
// matches its checkpoint fingerprint.
func TestRecoveryPreservesDegradedDecision(t *testing.T) {
	stateDir := t.TempDir()
	s, err := New(Config{Workers: 1, StateDir: stateDir, DegradeP95: time.Nanosecond, SampleRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	pts := testPoints(1200, 23)
	warm, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, warm)

	// Admit a degraded job but drain before any worker can take it:
	// stall the worker with a slow job first.
	slow := testSpec("acme", pts)
	slow.FaultPlan = faultinject.New(5).Arm(mrscan.PhaseSite(mrscan.PhasePartition),
		faultinject.Rule{Times: 1, Delay: 300 * time.Millisecond})
	slowID, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if st, _ := s.Status(slowID); st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	id, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(id); !st.Degraded {
		t.Fatalf("setup: job not degraded at admission")
	}
	s.Drain()
	s.Close()

	s2, err := New(Config{Workers: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := waitTerminal(t, s2, id)
	if st.State != StateCompleted {
		t.Fatalf("recovered degraded job state = %s (err %q)", st.State, st.Err)
	}
	if !st.Degraded || st.SampleRate != 0.4 {
		t.Fatalf("recovery lost the degraded decision: degraded=%v rate=%v, want true/0.4",
			st.Degraded, st.SampleRate)
	}
}
