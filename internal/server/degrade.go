package server

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Graceful degradation: past the overload watermarks the server keeps
// serving by answering a cheaper question. Following the subsampled
// similarity-queries construction (Jiang, Jang & Łącki, "Faster DBSCAN
// via subsampled similarity queries", NeurIPS 2020), a degraded job
// clusters a seeded uniform subsample of its input at rate s with
// MinPts scaled by s — a point that is core in the full data has ~s·k
// sampled eps-neighbors in expectation, so density thresholds survive
// the sampling — and then attaches each unsampled point to the cluster
// of its nearest labeled sampled neighbor within eps. The result is a
// bounded-loss clustering (≥ 0.95 DBDC against the full-quality
// reference on the workloads in internal/chaos) at roughly s of the
// cluster-phase cost, and the job's status records Degraded/SampleRate
// so the loss is never silent.

// latencyWindow is a fixed-size ring of recent completed-job latencies,
// feeding the p95 overload watermark.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, size)}
}

func (w *latencyWindow) add(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// p95 returns the 95th-percentile latency over the window (0 when
// empty).
func (w *latencyWindow) p95() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, w.n)
	if w.n < len(w.buf) {
		copy(tmp, w.buf[:w.n])
	} else {
		copy(tmp, w.buf)
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := (95*w.n + 99) / 100 // ceil(0.95 n)
	if idx > 0 {
		idx--
	}
	return tmp[idx]
}

// shouldDegradeLocked is the overload watermark check applied to each
// new admission: total queue depth beyond DegradeQueueDepth, or p95
// completed-job latency beyond DegradeP95. Caller holds s.mu.
func (s *Server) shouldDegradeLocked() bool {
	if s.cfg.DegradeQueueDepth > 0 && s.queued >= s.cfg.DegradeQueueDepth {
		return true
	}
	if s.cfg.DegradeP95 > 0 && s.lat.p95() >= s.cfg.DegradeP95 {
		return true
	}
	return false
}

// jobSeed derives the deterministic subsample seed from the job ID, so
// a resumed degraded job regenerates the exact same sample (and thus
// the same input bytes and checkpoint fingerprint) as its first run.
func jobSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & math.MaxInt64)
}

// effectiveMinPts returns the pipeline MinPts for the job: the spec
// value, scaled by the sample rate when degraded (floor 2 — MinPts 1
// would declare every sampled point core).
func effectiveMinPts(job *Job) int {
	if !job.degraded {
		return job.spec.MinPts
	}
	m := int(math.Round(float64(job.spec.MinPts) * job.sampleRate))
	if m < 2 {
		m = 2
	}
	return m
}

// subsample draws a seeded uniform sample of pts at the given rate,
// preserving point identity (IDs ride along). It returns the sampled
// points and their indices into pts.
func subsample(pts []geom.Point, rate float64, seed int64) ([]geom.Point, []int32) {
	rng := rand.New(rand.NewSource(seed))
	sample := make([]geom.Point, 0, int(float64(len(pts))*rate)+1)
	idx := make([]int32, 0, cap(sample))
	for i, p := range pts {
		if rng.Float64() < rate {
			sample = append(sample, p)
			idx = append(idx, int32(i))
		}
	}
	if len(sample) == 0 { // degenerate rate/seed: keep at least one point
		sample = append(sample, pts[0])
		idx = append(idx, 0)
	}
	return sample, idx
}

// attachUnsampled expands sample labels back to the full input.
// Sampled points in clusters keep their pipeline label; every other
// point — unsampled ones, plus sampled points the thinned run called
// noise — is attached by DBSCAN's own membership rules, estimated on
// the sample:
//
//   - A sampled point is estimated-core when its eps-neighborhood in
//     the sample reaches the scaled MinPts (the same threshold the
//     thinned pipeline clustered with).
//   - A point joins the majority cluster among its estimated-core
//     sampled neighbors — only core points recruit, mirroring the
//     border-point rule; attaching to any cluster member would bleed
//     clusters into the surrounding noise.
//   - A point with no core neighbor but whose own sampled-neighbor
//     count reaches the scaled threshold is itself estimated-core (its
//     full neighborhood is ~1/s larger), so it joins the majority
//     cluster among all its clustered neighbors rather than drop to
//     noise.
//
// Majority vote rather than nearest-neighbor keeps boundary points
// with the cluster that dominates their neighborhood. The pass is
// O(n · log(s·n)) via a KD-tree over the sample.
//
// A recovery pass then repairs what binomial thinning lost. Points
// still unlabeled after the estimated pass are the ones the sample had
// no evidence for; for exactly those the pass switches to the full
// data and applies DBSCAN's real rules — a point is core iff its full
// eps-neighborhood reaches the unscaled MinPts — propagating labels
// outward from already-labeled core points until a fixpoint. Each
// round is a Jacobi update (votes read the previous round's labels) so
// the result is independent of iteration order. Exact coreness is only
// computed for unlabeled points, keeping the pass a fraction of a full
// clustering: the subsampled pipeline already paid ~rate² of the pair
// cost, and this spends O(unlabeled · query) to claw back the quality.
func attachUnsampled(pts []geom.Point, sampled []int32, sampleLabels []int, eps float64, scaledMinPts, minPts int) []int {
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = -1
	}
	for si, pi := range sampled {
		labels[pi] = sampleLabels[si]
	}
	sample := make([]geom.Point, len(sampled))
	for si, pi := range sampled {
		sample[si] = pts[pi]
	}
	tree := kdtree.Build(sample, 64)
	core := make([]bool, len(sample))
	for si, sp := range sample {
		cnt := 0
		tree.Range(sp, eps, int32(si), func(int32) bool {
			cnt++
			return cnt < scaledMinPts // early exit once core is proven
		})
		core[si] = cnt+1 >= scaledMinPts // +1: the point itself
	}

	// isCore marks, on full-input indices, the points allowed to recruit
	// neighbors in the recovery pass: clustered estimated-core sampled
	// points now, estimated-core attachments and exact-core recoveries as
	// the passes find them.
	isCore := make([]bool, len(pts))
	for si, pi := range sampled {
		if sampleLabels[si] >= 0 && core[si] {
			isCore[pi] = true
		}
	}

	coreVotes := make(map[int]int, 8)
	allVotes := make(map[int]int, 8)
	for i, p := range pts {
		if labels[i] >= 0 {
			continue // clustered sampled point: keep its pipeline label
		}
		clear(coreVotes)
		clear(allVotes)
		total := 0
		tree.Range(p, eps, -1, func(si int32) bool {
			total++
			if l := sampleLabels[si]; l >= 0 {
				allVotes[l]++
				if core[si] {
					coreVotes[l]++
				}
			}
			return true
		})
		votes := coreVotes
		estCore := false
		if len(votes) == 0 {
			if total < scaledMinPts {
				continue // no sample evidence; the recovery pass decides
			}
			votes = allVotes // estimated-core point extends the cluster
			estCore = true
		}
		best, bestN := -1, 0
		for l, n := range votes {
			if n > bestN || (n == bestN && l < best) {
				best, bestN = l, n
			}
		}
		if bestN > 0 {
			labels[i] = best
			if estCore {
				isCore[i] = true
			}
		}
	}

	// Recovery: exact-density label propagation over the full data.
	fullTree := kdtree.Build(pts, 64)
	coreStat := make([]int8, len(pts)) // 0 unknown, 1 core, 2 not
	fullCore := func(i int) bool {
		if coreStat[i] == 0 {
			cnt := 0
			fullTree.Range(pts[i], eps, int32(i), func(int32) bool {
				cnt++
				return cnt < minPts
			})
			if cnt+1 >= minPts {
				coreStat[i] = 1
			} else {
				coreStat[i] = 2
			}
		}
		return coreStat[i] == 1
	}
	type attach struct {
		i, label int
		core     bool
	}
	votes := make(map[int]int, 8)
	for round := 0; round < 64; round++ {
		var wave []attach
		for i := range pts {
			if labels[i] >= 0 {
				continue
			}
			clear(votes)
			fullTree.Range(pts[i], eps, int32(i), func(j int32) bool {
				if labels[j] >= 0 && isCore[j] {
					votes[labels[j]]++
				}
				return true
			})
			if len(votes) == 0 {
				continue // no labeled core in reach yet; later rounds may arrive
			}
			best, bestN := -1, 0
			for l, n := range votes {
				if n > bestN || (n == bestN && l < best) {
					best, bestN = l, n
				}
			}
			wave = append(wave, attach{i, best, fullCore(i)})
		}
		if len(wave) == 0 {
			break
		}
		for _, a := range wave {
			labels[a.i] = a.label
			if a.core {
				isCore[a.i] = true
			}
		}
	}

	// Formation: thinning can erase whole small clusters — ones whose
	// scaled density fell below the sampled threshold everywhere, so no
	// labeled seed exists for the wave to grow from. Any exact-core
	// point still unlabeled here anchors a genuine DBSCAN cluster of the
	// full data; expand each such connected component of exact cores
	// (borders ride along) under a fresh label.
	next := 0
	for _, l := range labels {
		if l >= next {
			next = l + 1
		}
	}
	for i := range pts {
		if labels[i] >= 0 || !fullCore(i) {
			continue
		}
		comp := []int32{int32(i)}
		labels[i] = next
		isCore[i] = true
		for head := 0; head < len(comp); head++ {
			c := comp[head]
			fullTree.Range(pts[c], eps, c, func(j int32) bool {
				if labels[j] >= 0 {
					return true
				}
				labels[j] = next
				if fullCore(int(j)) {
					isCore[j] = true
					comp = append(comp, j)
				}
				return true
			})
		}
		next++
	}
	return labels
}
