package server

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// breaker is a consecutive-failure circuit breaker. After threshold
// consecutive job failures it opens: admission for its scope (one
// tenant, or the whole pipeline for the global breaker) is rejected
// with ErrBreakerOpen until the cooldown elapses, at which point the
// breaker closes again with a clean failure count. The point is to
// stop a failing tenant (or a sick pipeline) from burning worker time
// on jobs that will fail anyway, and to give operators a metric
// (server_breaker_state / server_breaker_trips_total) that says so.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	consecutive int
	openUntil   time.Time
	trips       *telemetry.Counter
	state       *telemetry.Gauge
}

// newBreaker returns a breaker; threshold < 0 disables it (allow always
// passes). trips/state may be nil-handle telemetry instruments.
func newBreaker(threshold int, cooldown time.Duration, trips *telemetry.Counter, state *telemetry.Gauge) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, trips: trips, state: state}
}

// allow reports whether admission may proceed, closing the breaker
// first if its cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return false
	}
	if !b.openUntil.IsZero() {
		// Cooldown over: close and forget the failure streak.
		b.openUntil = time.Time{}
		b.consecutive = 0
		b.state.Set(0)
	}
	return true
}

// recordFailure counts one failed job; it reports true exactly when
// this failure trips the breaker open.
func (b *breaker) recordFailure(now time.Time) bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold && !now.Before(b.openUntil) && b.openUntil.IsZero() {
		b.openUntil = now.Add(b.cooldown)
		b.trips.Inc()
		b.state.Set(1)
		return true
	}
	return false
}

// recordSuccess resets the failure streak.
func (b *breaker) recordSuccess() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.mu.Unlock()
}
