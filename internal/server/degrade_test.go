package server

import (
	"testing"
	"time"

	"repro/internal/quality"
)

func TestDegradedModeQuality(t *testing.T) {
	// DegradeP95 of 1ns: the moment any job has completed, the latency
	// watermark is crossed and every subsequent admission degrades —
	// a deterministic way to drive the watermark without racing the
	// queue.
	s, err := New(Config{Workers: 1, DegradeP95: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(4000, 11)
	spec := testSpec("acme", pts)

	warm, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, warm); st.State != StateCompleted || st.Degraded {
		t.Fatalf("warmup job: state=%s degraded=%v, want completed full-quality", st.State, st.Degraded)
	}

	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCompleted {
		t.Fatalf("degraded job state = %s (err %q)", st.State, st.Err)
	}
	if !st.Degraded || st.SampleRate != 0.8 {
		t.Fatalf("job past the watermark not marked degraded (degraded=%v rate=%v)",
			st.Degraded, st.SampleRate)
	}
	got, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("degraded job returned %d labels for %d points — attach pass lost points",
			len(got), len(pts))
	}
	q, err := quality.Score(referenceLabels(t, pts, spec), got)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance floor for degraded mode: bounded, recorded quality
	// loss — never silent garbage.
	if q < 0.95 {
		t.Fatalf("degraded job quality %.4f, want >= 0.95", q)
	}
	t.Logf("degraded quality at rate 0.8: %.4f", q)

	// NoDegrade opts a job out even past the watermark.
	spec.NoDegrade = true
	id, err = s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, id); st.Degraded {
		t.Fatalf("NoDegrade job was degraded")
	}
}

func TestDegradeQueueDepthWatermark(t *testing.T) {
	// Disable the latency watermark; drive the queue-depth one: with
	// the single worker pinned by a slow job and one job queued, the
	// next admission sees depth >= 1 and degrades.
	s, err := New(Config{Workers: 1, DegradeQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pts := testPoints(1500, 12)
	first, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if st, _ := s.Status(first); st.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	second, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatal(err)
	}
	third, err := s.Submit(testSpec("acme", pts))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, third); !st.Degraded {
		t.Fatalf("admission at queue depth >= watermark did not degrade")
	}
	waitTerminal(t, s, first)
	waitTerminal(t, s, second)
}

func TestSubsampleDeterminism(t *testing.T) {
	pts := testPoints(2000, 13)
	s1, i1 := subsample(pts, 0.5, jobSeed("job-000042"))
	s2, i2 := subsample(pts, 0.5, jobSeed("job-000042"))
	if len(s1) != len(s2) {
		t.Fatalf("same seed, different sample sizes: %d vs %d", len(s1), len(s2))
	}
	for k := range i1 {
		if i1[k] != i2[k] || s1[k] != s2[k] {
			t.Fatalf("same seed diverged at sample element %d", k)
		}
	}
	// The rate actually thins the data (loose bounds; the sampler is
	// Bernoulli, not exact-count).
	if n := len(s1); n < len(pts)/3 || n > 2*len(pts)/3 {
		t.Fatalf("rate-0.5 sample kept %d of %d points", n, len(pts))
	}
}
