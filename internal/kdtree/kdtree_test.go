package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n int, scale float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return pts
}

func bruteRange(pts []geom.Point, center geom.Point, eps float64, self int32) map[int32]bool {
	want := map[int32]bool{}
	for j := range pts {
		if int32(j) == self {
			continue
		}
		if geom.Dist2(center, pts[j]) <= eps*eps {
			want[int32(j)] = true
		}
	}
	return want
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 0)
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	called := false
	tr.Range(geom.Point{}, 1, -1, func(int32) bool { called = true; return true })
	if called {
		t.Error("Range on empty tree must not call fn")
	}
	if got := tr.CountRange(geom.Point{}, 1, -1, 0); got != 0 {
		t.Errorf("CountRange = %d, want 0", got)
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []geom.Point{{ID: 7, X: 1, Y: 2}}
	tr := Build(pts, 4)
	if got := tr.CountRange(geom.Point{X: 1, Y: 2}, 0.5, -1, 0); got != 1 {
		t.Errorf("count around the point = %d, want 1", got)
	}
	if got := tr.CountRange(geom.Point{X: 1, Y: 2}, 0.5, 0, 0); got != 0 {
		t.Errorf("count excluding self = %d, want 0", got)
	}
	if got := tr.CountRange(geom.Point{X: 9, Y: 9}, 0.5, -1, 0); got != 0 {
		t.Errorf("count far away = %d, want 0", got)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 17, 64, 65, 300, 1000} {
		pts := randomPoints(rng, n, 1)
		tr := Build(pts, 16)
		for trial := 0; trial < 30; trial++ {
			center := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			eps := rng.Float64() * 0.3
			got := map[int32]bool{}
			tr.Range(center, eps, -1, func(i int32) bool { got[i] = true; return true })
			want := bruteRange(pts, center, eps, -1)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d results, want %d", n, len(got), len(want))
			}
			for i := range want {
				if !got[i] {
					t.Fatalf("n=%d: missing index %d", n, i)
				}
			}
		}
	}
}

func TestRangeSelfExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 200, 1)
	tr := Build(pts, 8)
	for i := 0; i < len(pts); i += 13 {
		tr.Range(pts[i], 0.2, int32(i), func(j int32) bool {
			if j == int32(i) {
				t.Fatalf("self index %d returned", i)
			}
			return true
		})
	}
}

func TestRangeEarlyStop(t *testing.T) {
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 0.01, Y: 0}, {X: 0.02, Y: 0}, {X: 0.03, Y: 0},
	}
	tr := Build(pts, 2)
	calls := 0
	tr.Range(geom.Point{X: 0.015, Y: 0}, 1, -1, func(int32) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("early-stop traversal made %d calls, want 2", calls)
	}
}

func TestCountRangeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := randomPoints(rng, 500, 0.2) // dense: everything near everything
	tr := Build(pts, 32)
	if got := tr.CountRange(pts[0], 0.5, 0, 10); got != 10 {
		t.Errorf("limited count = %d, want 10", got)
	}
	full := tr.CountRange(pts[0], 0.5, 0, 0)
	want := len(bruteRange(pts, pts[0], 0.5, 0))
	if full != want {
		t.Errorf("full count = %d, want %d", full, want)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// All points identical: the build must terminate and queries must
	// still return every point.
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: 3, Y: 4}
	}
	tr := Build(pts, 4)
	if got := tr.CountRange(geom.Point{X: 3, Y: 4}, 0.001, -1, 0); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
}

func TestCollinearPoints(t *testing.T) {
	pts := make([]geom.Point, 256)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), X: float64(i), Y: 0}
	}
	tr := Build(pts, 4)
	got := tr.CountRange(geom.Point{X: 100, Y: 0}, 2.5, -1, 0)
	if got != 5 { // 98,99,100,101,102
		t.Errorf("count = %d, want 5", got)
	}
}

func TestLeavesPartitionThePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randomPoints(rng, 777, 10)
	tr := Build(pts, 32)
	seen := make([]bool, len(pts))
	for _, leaf := range tr.Leaves() {
		if len(leaf.Points) == 0 {
			t.Error("empty leaf")
		}
		if len(leaf.Points) > 32 {
			t.Errorf("leaf with %d points exceeds capacity 32", len(leaf.Points))
		}
		for _, i := range leaf.Points {
			if seen[i] {
				t.Fatalf("point %d in two leaves", i)
			}
			seen[i] = true
			if !leaf.Bounds.Contains(pts[i]) {
				t.Fatalf("leaf bounds %+v do not contain point %v", leaf.Bounds, pts[i])
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d not in any leaf", i)
		}
	}
}

func TestFlattenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 600, 1)
	tr := Build(pts, 16)
	f := tr.Flatten()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	for trial := 0; trial < 40; trial++ {
		center := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		eps := rng.Float64() * 0.2
		got := map[int32]bool{}
		f.Range(xs, ys, center.X, center.Y, eps, -1, func(i int32) bool { got[i] = true; return true })
		want := map[int32]bool{}
		tr.Range(center, eps, -1, func(i int32) bool { want[i] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("flat range returned %d, tree returned %d", len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("flat range missing %d", i)
			}
		}
	}
}

// TestRangeCompletenessProperty: random point sets of random shapes always
// match brute force.
func TestRangeCompletenessProperty(t *testing.T) {
	f := func(coords []int8, epsRaw uint8) bool {
		pts := make([]geom.Point, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, geom.Point{
				ID: uint64(i / 2),
				X:  float64(coords[i]) / 16,
				Y:  float64(coords[i+1]) / 16,
			})
		}
		if len(pts) == 0 {
			return true
		}
		eps := float64(epsRaw)/64 + 0.01
		tr := Build(pts, 4)
		center := pts[0]
		got := 0
		tr.Range(center, eps, -1, func(int32) bool { got++; return true })
		return got == len(bruteRange(pts, center, eps, -1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 1000, 1)
	tr := Build(pts, 16)
	if tr.Nodes() < 2 {
		t.Errorf("tree over 1000 points must have internal structure, got %d nodes", tr.Nodes())
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts, 64)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(rng, 100000, 1)
	tr := Build(pts, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		tr.CountRange(p, 0.01, int32(i%len(pts)), 0)
	}
}
