// Package kdtree implements the modified KD-tree of CUDA-DClust (§3.2.1):
// a region KD-tree whose leaves hold *regions of points* rather than single
// points. Mr. Scan's GPGPU DBSCAN uses it in two ways:
//
//  1. Range queries bound the candidate set for Eps-neighborhood tests.
//  2. The leaf subdivisions drive the dense-box optimization (§3.2.3): a
//     leaf whose region has diagonal ≤ Eps and point count ≥ MinPts is a
//     "dense box" — all its points are mutually within Eps, hence all core
//     and all in one cluster, and none needs individual expansion.
//
// The tree can be flattened into index arrays (Flatten) — the layout a real
// CUDA kernel would traverse with an explicit stack, and the form consumed
// by the gpusim kernels.
package kdtree

import (
	"cmp"
	"slices"

	"repro/internal/geom"
)

// DefaultLeafSize is the leaf region capacity used when the caller passes
// a non-positive leaf size.
const DefaultLeafSize = 64

// Tree is a region KD-tree over a point set. It stores a permutation of
// point indices; leaves own contiguous ranges of that permutation.
type Tree struct {
	pts     []geom.Point
	order   []int32 // permutation of point indices; leaves own ranges
	nodes   []node
	leafCap int
}

type node struct {
	bounds geom.Rect
	// Internal nodes: axis 0 (x) or 1 (y), split value, children indices.
	// Leaves: left == -1, [start,count) into order.
	axis        int8
	left, right int32
	split       float64
	start       int32
	count       int32
}

// Build constructs a tree over pts with the given leaf capacity.
// Build does not copy or reorder pts; it keeps a reference, so callers
// must not mutate the slice while the tree is in use.
func Build(pts []geom.Point, leafCap int) *Tree {
	t := &Tree{}
	t.buildInto(pts, leafCap)
	return t
}

// buildInto (re)constructs the tree over pts, reusing t's order and node
// backing arrays when their capacity suffices.
func (t *Tree) buildInto(pts []geom.Point, leafCap int) {
	if leafCap <= 0 {
		leafCap = DefaultLeafSize
	}
	t.pts = pts
	t.leafCap = leafCap
	if cap(t.order) < len(pts) {
		t.order = make([]int32, len(pts))
	}
	t.order = t.order[:len(pts)]
	t.nodes = t.nodes[:0]
	for i := range t.order {
		t.order[i] = int32(i)
	}
	if len(pts) > 0 {
		t.build(0, int32(len(pts)))
	}
}

// build recursively constructs the subtree over order[start:end) and
// returns its node index.
func (t *Tree) build(start, end int32) int32 {
	bounds := geom.EmptyRect()
	for _, i := range t.order[start:end] {
		bounds = bounds.Extend(t.pts[i])
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{bounds: bounds, left: -1, right: -1, start: start, count: end - start})
	if int(end-start) <= t.leafCap {
		return idx
	}
	// Split on the wider axis at the median, mirroring CUDA-DClust's
	// balanced subdivision of the point space.
	axis := int8(0)
	if bounds.Height() > bounds.Width() {
		axis = 1
	}
	seg := t.order[start:end]
	mid := len(seg) / 2
	if axis == 0 {
		slices.SortFunc(seg, func(a, b int32) int { return cmp.Compare(t.pts[a].X, t.pts[b].X) })
	} else {
		slices.SortFunc(seg, func(a, b int32) int { return cmp.Compare(t.pts[a].Y, t.pts[b].Y) })
	}
	split := coord(t.pts[seg[mid]], axis)
	// Degenerate data (many identical coordinates) can make one side
	// empty; fall back to a leaf in that case.
	if coord(t.pts[seg[0]], axis) == coord(t.pts[seg[len(seg)-1]], axis) {
		return idx
	}
	// Ensure mid splits strictly: move mid forward past equal coords so
	// the left child is non-empty and the right child starts at a value
	// >= split.
	for mid > 0 && coord(t.pts[seg[mid-1]], axis) == split {
		mid--
	}
	if mid == 0 {
		for mid < len(seg) && coord(t.pts[seg[mid]], axis) == split {
			mid++
		}
		if mid < len(seg) {
			split = coord(t.pts[seg[mid]], axis)
		}
	}
	if mid == 0 || mid == len(seg) {
		return idx
	}
	left := t.build(start, start+int32(mid))
	right := t.build(start+int32(mid), end)
	n := &t.nodes[idx]
	n.axis = axis
	n.split = split
	n.left = left
	n.right = right
	n.start = 0
	n.count = 0
	return idx
}

func coord(p geom.Point, axis int8) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Points returns the indexed point slice.
func (t *Tree) Points() []geom.Point { return t.pts }

// Range invokes fn with the index of every point within eps of center,
// excluding the point index self (pass a negative self to include all).
// fn returning false stops the search early.
func (t *Tree) Range(center geom.Point, eps float64, self int32, fn func(i int32) bool) {
	if len(t.nodes) == 0 {
		return
	}
	eps2 := eps * eps
	// Explicit stack, as a GPU kernel would use; no recursion.
	stack := make([]int32, 1, 64)
	stack[0] = 0
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		if n.bounds.Dist2ToPoint(center) > eps2 {
			continue
		}
		if n.left < 0 { // leaf
			for _, i := range t.order[n.start : n.start+n.count] {
				if i == self {
					continue
				}
				if geom.Dist2(center, t.pts[i]) <= eps2 {
					if !fn(i) {
						return
					}
				}
			}
			continue
		}
		stack = append(stack, n.left, n.right)
	}
}

// CountRange returns the number of points within eps of center (excluding
// self), stopping early once limit is reached (limit <= 0 counts all).
func (t *Tree) CountRange(center geom.Point, eps float64, self int32, limit int) int {
	count := 0
	t.Range(center, eps, self, func(int32) bool {
		count++
		return limit <= 0 || count < limit
	})
	return count
}

// Leaf describes one leaf region, for dense-box detection.
type Leaf struct {
	Bounds geom.Rect
	// Indices of the points in the region (a sub-slice of the tree's
	// internal ordering; do not mutate).
	Points []int32
}

// Leaves returns every leaf region of the tree.
func (t *Tree) Leaves() []Leaf {
	var out []Leaf
	t.VisitLeaves(func(l Leaf) { out = append(out, l) })
	return out
}

// VisitLeaves invokes fn for every leaf region of the tree, in node
// order, without allocating the slice Leaves builds.
func (t *Tree) VisitLeaves(fn func(Leaf)) {
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.left < 0 {
			fn(Leaf{
				Bounds: n.bounds,
				Points: t.order[n.start : n.start+n.count],
			})
		}
	}
}

// Flat is the array-of-structs flattening of the tree used by the gpusim
// kernels — the representation a real GPU implementation would copy to
// device memory (tree-of-pointers layouts cannot be traversed efficiently
// on a GPU; CUDA-DClust flattens exactly like this).
type Flat struct {
	// Per node i:
	//   Bounds[4i..4i+3] = MinX, MinY, MaxX, MaxY
	//   Left[i], Right[i]: child node indices, Left[i] < 0 for leaves
	//   Start[i], Count[i]: leaf point range into Order
	Bounds []float64
	Left   []int32
	Right  []int32
	Start  []int32
	Count  []int32
	// Order is the permutation of point indices owned by leaves.
	Order []int32
}

// Flatten produces the array form of the tree. The result owns its
// arrays (Order is a copy), so it outlives later reuse of the tree.
func (t *Tree) Flatten() *Flat {
	f := &Flat{}
	t.flattenInto(f, false)
	return f
}

// flattenInto fills f from the tree, reusing f's backing arrays when
// their capacity suffices. With shareOrder the flat view aliases the
// tree's permutation instead of copying it — valid as long as neither
// is rebuilt while the other is in use.
func (t *Tree) flattenInto(f *Flat, shareOrder bool) {
	n := len(t.nodes)
	f.Bounds = grow(f.Bounds, 4*n)
	f.Left = grow(f.Left, n)
	f.Right = grow(f.Right, n)
	f.Start = grow(f.Start, n)
	f.Count = grow(f.Count, n)
	if shareOrder {
		f.Order = t.order
	} else {
		f.Order = grow(f.Order, len(t.order))
		copy(f.Order, t.order)
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		f.Bounds[4*i] = nd.bounds.MinX
		f.Bounds[4*i+1] = nd.bounds.MinY
		f.Bounds[4*i+2] = nd.bounds.MaxX
		f.Bounds[4*i+3] = nd.bounds.MaxY
		f.Left[i] = nd.left
		f.Right[i] = nd.right
		f.Start[i] = nd.start
		f.Count[i] = nd.count
	}
}

// grow resizes s to n elements, reallocating only when capacity is
// short. Contents are unspecified (callers overwrite every element).
func grow[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	return s[:n]
}

// Workspace holds the backing arrays of a tree and its flattened form so
// repeated build+flatten cycles (one per partition on a cluster-phase
// leaf) reuse allocations instead of re-allocating. The zero value is
// ready to use. A Workspace serves one build at a time: the Tree and
// Flat returned by Build become invalid at the next Build call. Not safe
// for concurrent use.
type Workspace struct {
	tree Tree
	flat Flat
}

// Build constructs the region KD-tree over pts into the workspace's
// arrays and returns the tree plus its flattened form (which shares the
// tree's point permutation — no copy).
func (w *Workspace) Build(pts []geom.Point, leafCap int) (*Tree, *Flat) {
	w.tree.buildInto(pts, leafCap)
	w.tree.flattenInto(&w.flat, true)
	return &w.tree, &w.flat
}

// Nodes returns the number of tree nodes (internal + leaf).
func (t *Tree) Nodes() int { return len(t.nodes) }

// Range over a Flat tree: identical traversal to Tree.Range but driven
// entirely from flat arrays plus the point coordinate slices, as the GPU
// kernels do.
func (f *Flat) Range(xs, ys []float64, cx, cy, eps float64, self int32, fn func(i int32) bool) {
	if len(f.Left) == 0 {
		return
	}
	eps2 := eps * eps
	stack := make([]int32, 1, 64)
	stack[0] = 0
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := f.Bounds[4*ni : 4*ni+4]
		dx := axisDist(cx, b[0], b[2])
		dy := axisDist(cy, b[1], b[3])
		if dx*dx+dy*dy > eps2 {
			continue
		}
		if f.Left[ni] < 0 {
			start, count := f.Start[ni], f.Count[ni]
			for _, i := range f.Order[start : start+count] {
				if i == self {
					continue
				}
				ddx := cx - xs[i]
				ddy := cy - ys[i]
				if ddx*ddx+ddy*ddy <= eps2 {
					if !fn(i) {
						return
					}
				}
			}
			continue
		}
		stack = append(stack, f.Left[ni], f.Right[ni])
	}
}

// CountRange returns the number of points within eps of (cx, cy),
// excluding index self, stopping early once limit is reached (limit <= 0
// counts all). It is the closure-free form of Range used by the
// classification kernel — the hot path runs without per-point callback
// indirection or captures.
func (f *Flat) CountRange(xs, ys []float64, cx, cy, eps float64, self int32, limit int) int {
	if len(f.Left) == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	var buf [64]int32
	stack := append(buf[:0], 0)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := f.Bounds[4*ni : 4*ni+4]
		dx := axisDist(cx, b[0], b[2])
		dy := axisDist(cy, b[1], b[3])
		if dx*dx+dy*dy > eps2 {
			continue
		}
		if f.Left[ni] < 0 {
			start, count32 := f.Start[ni], f.Count[ni]
			for _, i := range f.Order[start : start+count32] {
				if i == self {
					continue
				}
				ddx := cx - xs[i]
				ddy := cy - ys[i]
				if ddx*ddx+ddy*ddy <= eps2 {
					count++
					if limit > 0 && count >= limit {
						return count
					}
				}
			}
			continue
		}
		stack = append(stack, f.Left[ni], f.Right[ni])
	}
	return count
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
