// Package integrity holds the CRC32C checksum primitives and the typed
// wire-corruption errors shared by every checksummed data plane in the
// pipeline: checkpoint envelopes, Lustre block sums, mrnet TCP frame
// trailers, and distrib gob envelopes.
//
// All planes use CRC32C (the Castagnoli polynomial) — the same checksum
// Lustre's T10-PI integration and NVMe end-to-end protection use, and
// one with hardware support (SSE4.2 crc32 instruction) on every node of
// a Titan-class machine. Centralizing the table means a corruption
// detected at any layer reports through the same error vocabulary, so
// retry layers and the chaos harness can classify failures without
// knowing which plane caught them.
package integrity

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32C table shared by all planes.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// Update extends an in-progress CRC32C with p, for checksums computed
// over discontiguous spans (e.g. a read that straddles stored and
// copied bytes).
func Update(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// ErrChecksum reports a checksum mismatch: the payload arrived (or was
// stored) complete but its bytes do not match the recorded CRC32C.
// Transient wire corruption is retried by the detecting layer; a
// persistent mismatch surfaces wrapped in this error.
var ErrChecksum = errors.New("integrity: checksum mismatch")

// ErrTorn reports a short read mid-message: the peer died (or the file
// was truncated) partway through a frame or envelope. Distinct from
// ErrTooLarge and ErrChecksum so retry layers can tell a dropped
// connection from a hostile or corrupt length field.
var ErrTorn = errors.New("integrity: torn message (short read mid-frame)")

// ErrTooLarge reports a length field exceeding the plane's frame limit
// — either a corrupted header or a protocol mismatch, never retried.
var ErrTooLarge = errors.New("integrity: message exceeds size limit")

// ProtocolError reports a magic or version mismatch during a handshake
// or frame decode: the peer speaks a different protocol revision (or is
// not a peer at all). Surfaced instead of letting gob fail obscurely
// deep in an exchange.
type ProtocolError struct {
	// Plane names the protocol that rejected the peer (e.g.
	// "mrnet.tcp", "distrib").
	Plane string
	// Field is what mismatched: "magic" or "version".
	Field string
	Got   uint64
	Want  uint64
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("integrity: %s protocol %s mismatch: got %#x, want %#x (peer runs an incompatible revision)",
		e.Plane, e.Field, e.Got, e.Want)
}

// IsProtocolMismatch reports whether err carries a ProtocolError.
func IsProtocolMismatch(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

// MetricDetected is the telemetry counter every plane increments (with
// a "site" label) when a checksum or protocol layer catches an injected
// or real corruption. The chaos harness asserts this total equals the
// number of injected corruptions that reached a checksummed boundary.
const MetricDetected = "integrity_corruptions_detected"

// MetricMasked counts injected corruptions that were provably
// neutralized before any consumer saw them (e.g. a corrupted Lustre
// block fully overwritten by a later write). Detected + masked + latent
// must equal injected for a chaos run to pass.
const MetricMasked = "integrity_corruptions_masked"
