// Package dbscan implements the sequential DBSCAN algorithm of Ester,
// Kriegel, Sander and Xu (KDD'96) exactly as described in paper §2.1.
//
// It is the reference implementation Mr. Scan's output quality is measured
// against (the paper used ELKI 0.4.1; §5.1.3), and the base both the
// GPGPU variant and the baselines are validated against. The spatial
// index is pluggable: brute force (the O(n²) distance-matrix variant),
// the Eps grid, or the region KD-tree (average case O(n log n)).
package dbscan

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/rtree"
)

// Label values for points that are not members of any cluster.
const (
	// Noise marks a point in a low-density region (§2.1).
	Noise = -1
)

// IndexKind selects the spatial index backing neighborhood queries.
type IndexKind int

const (
	// IndexBrute compares every pair of points: the O(n²) formulation.
	IndexBrute IndexKind = iota
	// IndexGrid uses the Eps×Eps cell index (3×3 cell scan per query).
	IndexGrid
	// IndexKDTree uses the region KD-tree (CUDA-DClust's index).
	IndexKDTree
	// IndexRTree uses the R*-tree — "the R*-tree typically used in a CPU
	// implementation of DBSCAN" (§3.2.1).
	IndexRTree
)

// String names the index kind for experiment output.
func (k IndexKind) String() string {
	switch k {
	case IndexBrute:
		return "brute"
	case IndexGrid:
		return "grid"
	case IndexKDTree:
		return "kdtree"
	case IndexRTree:
		return "rtree"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Params carries the two DBSCAN parameters.
type Params struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPts is the minimum neighborhood size for a core point. Following
	// the original formulation (and ELKI), the neighborhood of p includes
	// p itself, so p is core iff |N_eps(p)| >= MinPts counting p.
	MinPts int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("dbscan: Eps must be positive, got %v", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: MinPts must be at least 1, got %d", p.MinPts)
	}
	return nil
}

// Result is the output of a clustering run.
type Result struct {
	// Labels[i] is the cluster of point i: 0..NumClusters-1, or Noise.
	Labels []int
	// Core[i] reports whether point i is a core point.
	Core []bool
	// NumClusters is the number of clusters found.
	NumClusters int
}

// neighborIndex abstracts the spatial index.
type neighborIndex interface {
	// neighbors calls fn with the index of every point within eps of
	// point i, excluding i itself.
	neighbors(i int32, fn func(j int32))
	// countAtLeast reports whether point i has at least k neighbors
	// within eps, excluding i itself.
	countAtLeast(i int32, k int) bool
}

// Cluster runs DBSCAN over pts and returns per-point labels.
// The clustering is deterministic: seeds are visited in input order, so
// (as §2.1 notes) border points claimed by two clusters go to the cluster
// whose seed appears first.
func Cluster(pts []geom.Point, params Params, kind IndexKind) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	idx := buildIndex(pts, params.Eps, kind)
	return run(pts, params, idx), nil
}

func buildIndex(pts []geom.Point, eps float64, kind IndexKind) neighborIndex {
	switch kind {
	case IndexGrid:
		return &gridIndex{idx: grid.NewIndex(grid.New(eps), pts), eps: eps}
	case IndexKDTree:
		return &kdIndex{t: kdtree.Build(pts, 0), eps: eps, pts: pts}
	case IndexRTree:
		return &rIndex{t: rtree.Build(pts), eps: eps, pts: pts}
	default:
		return &bruteIndex{pts: pts, eps: eps}
	}
}

func run(pts []geom.Point, params Params, idx neighborIndex) *Result {
	n := len(pts)
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	core := make([]bool, n)
	// minNeighbors excludes the point itself from the neighborhood count.
	minNeighbors := params.MinPts - 1

	nextCluster := 0
	var queue []int32
	for seed := 0; seed < n; seed++ {
		if labels[seed] != unvisited {
			continue
		}
		if !idx.countAtLeast(int32(seed), minNeighbors) {
			labels[seed] = Noise // may be re-labeled as border later
			continue
		}
		// Expand a new cluster from this core point (§2.1: "Once an
		// unvisited core point is found, it is considered a new cluster
		// along with its Eps-neighborhood").
		cid := nextCluster
		nextCluster++
		core[seed] = true
		labels[seed] = cid
		queue = queue[:0]
		idx.neighbors(int32(seed), func(j int32) {
			queue = append(queue, j)
		})
		for qi := 0; qi < len(queue); qi++ {
			p := queue[qi]
			if labels[p] == Noise {
				labels[p] = cid // border point
			}
			if labels[p] != unvisited {
				continue
			}
			labels[p] = cid
			if !idx.countAtLeast(p, minNeighbors) {
				continue // border point: member but not expanded
			}
			core[p] = true
			idx.neighbors(p, func(j int32) {
				if labels[j] == unvisited || labels[j] == Noise {
					queue = append(queue, j)
				}
			})
		}
	}
	return &Result{Labels: labels, Core: core, NumClusters: nextCluster}
}

// --- index implementations ---

type bruteIndex struct {
	pts []geom.Point
	eps float64
}

func (b *bruteIndex) neighbors(i int32, fn func(j int32)) {
	p := b.pts[i]
	eps2 := b.eps * b.eps
	for j := range b.pts {
		if int32(j) == i {
			continue
		}
		if geom.Dist2(p, b.pts[j]) <= eps2 {
			fn(int32(j))
		}
	}
}

func (b *bruteIndex) countAtLeast(i int32, k int) bool {
	if k <= 0 {
		return true
	}
	p := b.pts[i]
	eps2 := b.eps * b.eps
	count := 0
	for j := range b.pts {
		if int32(j) == i {
			continue
		}
		if geom.Dist2(p, b.pts[j]) <= eps2 {
			count++
			if count >= k {
				return true
			}
		}
	}
	return false
}

type gridIndex struct {
	idx *grid.Index
	eps float64
}

func (g *gridIndex) neighbors(i int32, fn func(j int32)) {
	g.idx.Neighbors(g.idx.Points()[i], g.eps, i, fn)
}

func (g *gridIndex) countAtLeast(i int32, k int) bool {
	if k <= 0 {
		return true
	}
	return g.idx.CountNeighbors(g.idx.Points()[i], g.eps, i, k) >= k
}

type kdIndex struct {
	t   *kdtree.Tree
	pts []geom.Point
	eps float64
}

func (k *kdIndex) neighbors(i int32, fn func(j int32)) {
	k.t.Range(k.pts[i], k.eps, i, func(j int32) bool {
		fn(j)
		return true
	})
}

func (k *kdIndex) countAtLeast(i int32, want int) bool {
	if want <= 0 {
		return true
	}
	return k.t.CountRange(k.pts[i], k.eps, i, want) >= want
}

type rIndex struct {
	t   *rtree.Tree
	pts []geom.Point
	eps float64
}

func (r *rIndex) neighbors(i int32, fn func(j int32)) {
	r.t.Range(r.pts[i], r.eps, i, func(j int32) bool {
		fn(j)
		return true
	})
}

func (r *rIndex) countAtLeast(i int32, want int) bool {
	if want <= 0 {
		return true
	}
	return r.t.CountRange(r.pts[i], r.eps, i, want) >= want
}
