package dbscan

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var allKinds = []IndexKind{IndexBrute, IndexGrid, IndexKDTree, IndexRTree}

// blob generates n points around (cx,cy) within radius r.
func blob(rng *rand.Rand, idBase uint64, n int, cx, cy, r float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID: idBase + uint64(i),
			X:  cx + (rng.Float64()*2-1)*r,
			Y:  cy + (rng.Float64()*2-1)*r,
		}
	}
	return pts
}

func TestValidate(t *testing.T) {
	if err := (Params{Eps: 0, MinPts: 4}).Validate(); err == nil {
		t.Error("Eps=0 must be rejected")
	}
	if err := (Params{Eps: 0.1, MinPts: 0}).Validate(); err == nil {
		t.Error("MinPts=0 must be rejected")
	}
	if err := (Params{Eps: 0.1, MinPts: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestTwoBlobsAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pts []geom.Point
	pts = append(pts, blob(rng, 0, 50, 0, 0, 0.05)...)
	pts = append(pts, blob(rng, 100, 50, 10, 10, 0.05)...)
	pts = append(pts, geom.Point{ID: 999, X: 5, Y: 5}) // isolated noise
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Cluster(pts, Params{Eps: 0.1, MinPts: 4}, kind)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumClusters != 2 {
				t.Fatalf("NumClusters = %d, want 2", res.NumClusters)
			}
			// Both blobs are dense; all their points share one label each.
			for i := 1; i < 50; i++ {
				if res.Labels[i] != res.Labels[0] {
					t.Fatalf("blob 1 split: point %d has %d, point 0 has %d", i, res.Labels[i], res.Labels[0])
				}
			}
			for i := 51; i < 100; i++ {
				if res.Labels[i] != res.Labels[50] {
					t.Fatalf("blob 2 split at point %d", i)
				}
			}
			if res.Labels[0] == res.Labels[50] {
				t.Error("distinct blobs must get distinct clusters")
			}
			if res.Labels[100] != Noise {
				t.Errorf("isolated point labeled %d, want Noise", res.Labels[100])
			}
			if res.Core[100] {
				t.Error("isolated point must not be core")
			}
		})
	}
}

func TestAllNoise(t *testing.T) {
	pts := []geom.Point{
		{ID: 0, X: 0, Y: 0}, {ID: 1, X: 10, Y: 0}, {ID: 2, X: 0, Y: 10},
	}
	res, err := Cluster(pts, Params{Eps: 0.1, MinPts: 2}, IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("NumClusters = %d, want 0", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Errorf("point %d labeled %d, want Noise", i, l)
		}
	}
}

func TestMinPtsCountsSelf(t *testing.T) {
	// Two points within eps: with MinPts=2 (self + 1 neighbor) both are
	// core; with MinPts=3 neither is.
	pts := []geom.Point{{ID: 0, X: 0, Y: 0}, {ID: 1, X: 0.05, Y: 0}}
	res, err := Cluster(pts, Params{Eps: 0.1, MinPts: 2}, IndexBrute)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 || !res.Core[0] || !res.Core[1] {
		t.Errorf("MinPts=2: want one cluster of two core points, got %+v", res)
	}
	res, err = Cluster(pts, Params{Eps: 0.1, MinPts: 3}, IndexBrute)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("MinPts=3: want zero clusters, got %d", res.NumClusters)
	}
}

func TestBorderPoint(t *testing.T) {
	// A chain: cluster core at x=0..0.02 (3 mutually-close points) plus a
	// border point at 0.1 from one core point, itself not core.
	pts := []geom.Point{
		{ID: 0, X: 0, Y: 0},
		{ID: 1, X: 0.01, Y: 0},
		{ID: 2, X: 0.02, Y: 0},
		{ID: 3, X: 0.12, Y: 0}, // within 0.1 of point 2 only
	}
	res, err := Cluster(pts, Params{Eps: 0.1, MinPts: 3}, IndexBrute)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", res.NumClusters)
	}
	if res.Labels[3] != res.Labels[0] {
		t.Error("border point must join the cluster")
	}
	if res.Core[3] {
		t.Error("border point must not be core")
	}
}

// TestIrregularShape exercises DBSCAN's headline property: finding
// non-convex clusters (here, a ring around a separate central blob).
func TestIrregularShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pts []geom.Point
	id := uint64(0)
	// Ring of radius 1 with 720 points: neighboring ring points are
	// ~0.0087 apart, well within eps.
	for i := 0; i < 720; i++ {
		angle := float64(i) / 720 * 2 * 3.14159265358979
		pts = append(pts, geom.Point{
			ID: id,
			X:  math.Cos(angle) + rng.Float64()*0.001,
			Y:  math.Sin(angle) + rng.Float64()*0.001,
		})
		id++
	}
	center := blob(rng, id, 60, 0, 0, 0.05)
	pts = append(pts, center...)
	res, err := Cluster(pts, Params{Eps: 0.1, MinPts: 4}, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 (ring + center)", res.NumClusters)
	}
	ringLabel := res.Labels[0]
	for i := 0; i < 720; i++ {
		if res.Labels[i] != ringLabel {
			t.Fatalf("ring split at point %d", i)
		}
	}
	if res.Labels[720] == ringLabel {
		t.Error("center blob merged with ring")
	}
}

// TestIndexAgreement: all three indexes must agree on core flags and the
// cluster partition (cluster IDs may differ only by renaming — but since
// seeds are visited in input order, even IDs must match).
func TestIndexAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []geom.Point
	pts = append(pts, blob(rng, 0, 120, 0, 0, 0.3)...)
	pts = append(pts, blob(rng, 200, 80, 1.5, 0.2, 0.2)...)
	pts = append(pts, blob(rng, 400, 40, -1, -1, 0.05)...)
	for i := 0; i < 30; i++ {
		pts = append(pts, geom.Point{ID: 600 + uint64(i), X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10})
	}
	params := Params{Eps: 0.1, MinPts: 4}
	ref, err := Cluster(pts, params, IndexBrute)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []IndexKind{IndexGrid, IndexKDTree, IndexRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			got, err := Cluster(pts, params, kind)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumClusters != ref.NumClusters {
				t.Fatalf("NumClusters = %d, want %d", got.NumClusters, ref.NumClusters)
			}
			for i := range pts {
				if got.Core[i] != ref.Core[i] {
					t.Fatalf("core flag of point %d differs", i)
				}
				if got.Labels[i] != ref.Labels[i] {
					t.Fatalf("label of point %d = %d, want %d", i, got.Labels[i], ref.Labels[i])
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blob(rng, 0, 500, 0, 0, 1)
	a, err := Cluster(pts, Params{Eps: 0.1, MinPts: 4}, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, Params{Eps: 0.1, MinPts: 4}, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("non-deterministic label at %d", i)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Cluster(nil, Params{Eps: 0.1, MinPts: 4}, IndexGrid)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 || len(res.Labels) != 0 {
		t.Errorf("empty input must produce empty result, got %+v", res)
	}
}

// TestCoreInvariant: every core point has >= MinPts points (incl. itself)
// within Eps; every cluster member is a core point or within Eps of a core
// member of the same cluster.
func TestCoreInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	pts = append(pts, blob(rng, 0, 300, 0, 0, 0.4)...)
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Point{ID: 1000 + uint64(i), X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3})
	}
	params := Params{Eps: 0.1, MinPts: 5}
	res, err := Cluster(pts, params, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	eps2 := params.Eps * params.Eps
	countWithin := func(i int) int {
		c := 1 // self
		for j := range pts {
			if j != i && geom.Dist2(pts[i], pts[j]) <= eps2 {
				c++
			}
		}
		return c
	}
	for i := range pts {
		n := countWithin(i)
		if res.Core[i] && n < params.MinPts {
			t.Fatalf("point %d marked core with only %d neighbors", i, n)
		}
		if !res.Core[i] && n >= params.MinPts {
			t.Fatalf("point %d not marked core despite %d neighbors", i, n)
		}
		if res.Labels[i] >= 0 && !res.Core[i] {
			// Border point: must have a core neighbor in the same cluster.
			ok := false
			for j := range pts {
				if j != i && res.Core[j] && res.Labels[j] == res.Labels[i] &&
					geom.Dist2(pts[i], pts[j]) <= eps2 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border point %d has no core neighbor in its cluster", i)
			}
		}
		if res.Labels[i] == Noise && res.Core[i] {
			t.Fatalf("core point %d labeled noise", i)
		}
	}
}

func BenchmarkClusterIndexes(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var pts []geom.Point
	for c := 0; c < 10; c++ {
		pts = append(pts, blob(rng, uint64(c*1000), 500, rng.Float64()*10, rng.Float64()*10, 0.2)...)
	}
	params := Params{Eps: 0.1, MinPts: 4}
	for _, kind := range []IndexKind{IndexGrid, IndexKDTree, IndexRTree} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Cluster(pts, params, kind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
