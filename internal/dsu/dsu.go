// Package dsu implements disjoint-set union (union-find) structures.
//
// Mr. Scan uses union-find in three places: resolving GPGPU block
// collisions after the expansion pass (§3.2.1), merging cluster fragments
// at internal tree nodes (§3.3.2), and in the PDSDBSCAN baseline (§2.2),
// which is built entirely around a parallel disjoint-set structure.
package dsu

import "sync"

// DSU is a sequential disjoint-set forest with union by rank and path
// compression. The zero value is unusable; construct with New.
type DSU struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns a DSU over n singleton elements 0..n-1.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	root := x
	for d.parent[root] != int32(root) {
		root = int(d.parent[root])
	}
	// Path compression.
	for d.parent[x] != int32(root) {
		x, d.parent[x] = int(d.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing a and b and reports whether a merge
// happened (false if they were already in the same set).
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.count--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// Labels returns, for every element, a dense label in 0..k-1 where k is the
// number of sets; elements in the same set share a label. Labels are
// assigned in order of first appearance.
func (d *DSU) Labels() []int {
	labels := make([]int, len(d.parent))
	next := 0
	seen := make(map[int]int, d.count)
	for i := range d.parent {
		r := d.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}

// Concurrent is a lock-striped disjoint-set forest safe for parallel Union
// and Find calls. It models the distributed disjoint-set structure of
// PDSDBSCAN: concurrent workers union across partition boundaries, and the
// contention on the structure is what limited that algorithm beyond 8,192
// cores.
type Concurrent struct {
	mu     sync.Mutex
	parent []int32
	rank   []int8

	// Unions counts successful union operations; Messages counts every
	// Find/Union touch as a proxy for the message traffic PDSDBSCAN
	// reports (super-linear growth in inter-core messages).
	stats struct {
		sync.Mutex
		unions   int64
		messages int64
	}
}

// NewConcurrent returns a Concurrent DSU over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{
		parent: make([]int32, n),
		rank:   make([]int8, n),
	}
	for i := range c.parent {
		c.parent[i] = int32(i)
	}
	return c
}

// Find returns the canonical representative of x's set.
func (c *Concurrent) Find(x int) int {
	c.mu.Lock()
	root := c.findLocked(x)
	c.mu.Unlock()
	c.stats.Lock()
	c.stats.messages++
	c.stats.Unlock()
	return root
}

func (c *Concurrent) findLocked(x int) int {
	root := x
	for c.parent[root] != int32(root) {
		root = int(c.parent[root])
	}
	for c.parent[x] != int32(root) {
		x, c.parent[x] = int(c.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing a and b.
func (c *Concurrent) Union(a, b int) bool {
	c.mu.Lock()
	ra, rb := c.findLocked(a), c.findLocked(b)
	merged := false
	if ra != rb {
		if c.rank[ra] < c.rank[rb] {
			ra, rb = rb, ra
		}
		c.parent[rb] = int32(ra)
		if c.rank[ra] == c.rank[rb] {
			c.rank[ra]++
		}
		merged = true
	}
	c.mu.Unlock()

	c.stats.Lock()
	c.stats.messages += 2
	if merged {
		c.stats.unions++
	}
	c.stats.Unlock()
	return merged
}

// Stats returns the number of successful unions and the message-count
// proxy accumulated so far.
func (c *Concurrent) Stats() (unions, messages int64) {
	c.stats.Lock()
	defer c.stats.Unlock()
	return c.stats.unions, c.stats.messages
}

// Labels returns dense set labels as in DSU.Labels. Not safe to call
// concurrently with Union.
func (c *Concurrent) Labels() []int {
	labels := make([]int, len(c.parent))
	next := 0
	seen := make(map[int]int)
	for i := range c.parent {
		c.mu.Lock()
		r := c.findLocked(i)
		c.mu.Unlock()
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}

// Keyed is a disjoint-set forest over arbitrary comparable keys, used by
// the merge phase where set elements are (leaf, local cluster) pairs that
// arrive incrementally at internal tree nodes.
type Keyed[K comparable] struct {
	parent map[K]K
	rank   map[K]int8
}

// NewKeyed returns an empty keyed union-find.
func NewKeyed[K comparable]() *Keyed[K] {
	return &Keyed[K]{parent: make(map[K]K), rank: make(map[K]int8)}
}

// Add registers k as a singleton if it is not already present.
func (d *Keyed[K]) Add(k K) {
	if _, ok := d.parent[k]; !ok {
		d.parent[k] = k
	}
}

// Find returns the representative of k's set, registering k if needed.
func (d *Keyed[K]) Find(k K) K {
	d.Add(k)
	root := k
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[k] != root {
		k, d.parent[k] = d.parent[k], root
	}
	return root
}

// Union merges the sets containing a and b, registering them if needed,
// and reports whether a merge happened.
func (d *Keyed[K]) Union(a, b K) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// Same reports whether a and b are in the same set.
func (d *Keyed[K]) Same(a, b K) bool { return d.Find(a) == d.Find(b) }

// Keys returns all registered keys (in map order).
func (d *Keyed[K]) Keys() []K {
	out := make([]K, 0, len(d.parent))
	for k := range d.parent {
		out = append(out, k)
	}
	return out
}
