package dsu

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSingletons(t *testing.T) {
	d := New(5)
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, d.Find(i), i)
		}
	}
}

func TestUnionFind(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Error("first union must merge")
	}
	if d.Union(0, 1) {
		t.Error("repeated union must not merge")
	}
	d.Union(2, 3)
	d.Union(1, 2) // {0,1,2,3}
	if !d.Same(0, 3) {
		t.Error("0 and 3 must be connected")
	}
	if d.Same(0, 4) {
		t.Error("0 and 4 must not be connected")
	}
	if d.Count() != 3 {
		t.Errorf("Count = %d, want 3 ({0..3},{4},{5})", d.Count())
	}
}

func TestLabelsDense(t *testing.T) {
	d := New(5)
	d.Union(0, 2)
	d.Union(3, 4)
	labels := d.Labels()
	if labels[0] != labels[2] {
		t.Error("0 and 2 must share a label")
	}
	if labels[3] != labels[4] {
		t.Error("3 and 4 must share a label")
	}
	if labels[0] == labels[1] || labels[0] == labels[3] || labels[1] == labels[3] {
		t.Errorf("distinct sets must have distinct labels: %v", labels)
	}
	// Labels must be dense 0..k-1.
	max := 0
	for _, l := range labels {
		if l < 0 {
			t.Fatalf("negative label in %v", labels)
		}
		if l > max {
			max = l
		}
	}
	if max != 2 {
		t.Errorf("labels must be dense 0..2, got %v", labels)
	}
}

// TestTransitivityProperty checks that connectivity via DSU matches
// reachability in the union graph.
func TestTransitivityProperty(t *testing.T) {
	f := func(edges []uint16, nSeed uint8) bool {
		n := int(nSeed)%60 + 2
		d := New(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i+1 < len(edges); i += 2 {
			a, b := int(edges[i])%n, int(edges[i+1])%n
			d.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		reach := bfsClosure(adj)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if d.Same(a, b) != reach[a][b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func bfsClosure(adj [][]bool) [][]bool {
	n := len(adj)
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		queue := []int{s}
		reach[s][s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < n; w++ {
				if adj[v][w] && !reach[s][w] {
					reach[s][w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return reach
}

func TestConcurrentParallelUnions(t *testing.T) {
	const n = 1000
	c := NewConcurrent(n)
	var wg sync.WaitGroup
	// Build a chain 0-1-2-...-999 from 8 workers with overlapping ranges.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n-1; i += 8 {
				c.Union(i, i+1)
			}
		}(w)
	}
	wg.Wait()
	root := c.Find(0)
	for i := 1; i < n; i++ {
		if c.Find(i) != root {
			t.Fatalf("element %d not connected to chain", i)
		}
	}
	unions, messages := c.Stats()
	if unions != n-1 {
		t.Errorf("unions = %d, want %d", unions, n-1)
	}
	if messages <= unions {
		t.Errorf("message proxy %d must exceed union count %d", messages, unions)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200
	type edge struct{ a, b int }
	edges := make([]edge, 300)
	for i := range edges {
		edges[i] = edge{rng.Intn(n), rng.Intn(n)}
	}
	seq := New(n)
	con := NewConcurrent(n)
	var wg sync.WaitGroup
	for _, e := range edges {
		seq.Union(e.a, e.b)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += 4 {
				con.Union(edges[i].a, edges[i].b)
			}
		}(w)
	}
	wg.Wait()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if seq.Same(a, b) != (con.Find(a) == con.Find(b)) {
				t.Fatalf("connectivity of (%d,%d) differs between sequential and concurrent", a, b)
			}
		}
	}
}

func TestConcurrentLabels(t *testing.T) {
	c := NewConcurrent(5)
	c.Union(0, 2)
	c.Union(3, 4)
	labels := c.Labels()
	if labels[0] != labels[2] || labels[3] != labels[4] {
		t.Errorf("connected elements must share labels: %v", labels)
	}
	if labels[0] == labels[1] || labels[1] == labels[3] || labels[0] == labels[3] {
		t.Errorf("distinct sets must differ: %v", labels)
	}
}

func TestKeyedUnionFind(t *testing.T) {
	type key struct{ leaf, cluster int }
	d := NewKeyed[key]()
	a := key{0, 1}
	b := key{1, 0}
	c := key{2, 7}
	d.Union(a, b)
	if !d.Same(a, b) {
		t.Error("a and b must be connected")
	}
	if d.Same(a, c) {
		t.Error("a and c must not be connected")
	}
	d.Union(b, c)
	if !d.Same(a, c) {
		t.Error("transitivity: a and c must be connected after b-c union")
	}
	if len(d.Keys()) != 3 {
		t.Errorf("Keys = %d entries, want 3", len(d.Keys()))
	}
}

func TestKeyedFindRegistersSingleton(t *testing.T) {
	d := NewKeyed[string]()
	if got := d.Find("x"); got != "x" {
		t.Errorf("Find on fresh key = %q, want %q", got, "x")
	}
	if d.Union("x", "x") {
		t.Error("self union must report no merge")
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for _, p := range pairs {
			d.Union(p[0], p[1])
		}
	}
}
