package mrnet

import (
	"context"
	"testing"
	"testing/quick"
)

func TestParseSpec(t *testing.T) {
	tests := []struct {
		spec string
		want []int
	}{
		{"256", []int{256}},
		{"2x16", []int{2, 16}},
		{"4x8x8", []int{4, 8, 8}},
		{" 2 x 3 ", []int{2, 3}},
	}
	for _, tt := range tests {
		got, err := ParseSpec(tt.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tt.spec, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("ParseSpec(%q) = %v, want %v", tt.spec, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("ParseSpec(%q) = %v, want %v", tt.spec, got, tt.want)
			}
		}
	}
	for _, bad := range []string{"", "x", "2x", "0", "-3", "2xa", "1024x1024x1024"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestNewFromSpecShapes(t *testing.T) {
	tests := []struct {
		spec         string
		wantLeaves   int
		wantInternal int
		wantDepth    int
	}{
		{"8", 8, 0, 2},
		{"2x16", 32, 2, 3},
		{"4x8x8", 256, 4 + 32, 4},
		{"1x5", 5, 1, 3}, // degenerate chain level
	}
	for _, tt := range tests {
		net, err := NewFromSpec(tt.spec, CostModel{}, nil)
		if err != nil {
			t.Fatalf("NewFromSpec(%q): %v", tt.spec, err)
		}
		if net.NumLeaves() != tt.wantLeaves {
			t.Errorf("%q: NumLeaves = %d, want %d", tt.spec, net.NumLeaves(), tt.wantLeaves)
		}
		if net.NumInternal() != tt.wantInternal {
			t.Errorf("%q: NumInternal = %d, want %d", tt.spec, net.NumInternal(), tt.wantInternal)
		}
		if net.Depth() != tt.wantDepth {
			t.Errorf("%q: Depth = %d, want %d", tt.spec, net.Depth(), tt.wantDepth)
		}
	}
}

func TestRegularTreeReduceAndRanges(t *testing.T) {
	net, err := NewFromSpec("3x4x2", CostModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLeaves() != 24 {
		t.Fatalf("leaves = %d", net.NumLeaves())
	}
	// Leaf ranges are contiguous and nested.
	var check func(n *Node)
	check = func(n *Node) {
		lo, hi := n.LeafRange()
		if n.IsLeaf() {
			if hi-lo != 1 || lo != n.LeafIndex() {
				t.Fatalf("leaf range %d..%d for leaf %d", lo, hi, n.LeafIndex())
			}
			return
		}
		cursor := lo
		for _, c := range n.Children() {
			clo, chi := c.LeafRange()
			if clo != cursor {
				t.Fatalf("child range %d..%d not contiguous at %d", clo, chi, cursor)
			}
			cursor = chi
			check(c)
		}
		if cursor != hi {
			t.Fatalf("children cover %d..%d, parent claims %d..%d", lo, cursor, lo, hi)
		}
	}
	check(net.Root())
	// Collective ops still work.
	sum, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) { return leaf, nil },
		func(_ *Node, in []int) (int, error) {
			s := 0
			for _, v := range in {
				s += v
			}
			return s, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 24 * 23 / 2; sum != want {
		t.Errorf("Reduce = %d, want %d", sum, want)
	}
}

func TestSpecRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		fa, fb, fc := int(a)%6+1, int(b)%6+1, int(c)%6+1
		net, err := NewRegular([]int{fa, fb, fc}, CostModel{}, nil)
		if err != nil {
			return false
		}
		return net.NumLeaves() == fa*fb*fc && net.Depth() == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
