package mrnet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// reduceSum runs an integer sum reduction and returns the result.
func reduceSum(t *testing.T, net *Network) int {
	t.Helper()
	got, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) { return leaf, nil },
		func(_ *Node, in []int) (int, error) {
			s := 0
			for _, v := range in {
				s += v
			}
			return s, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFailNodeExplicit(t *testing.T) {
	costs := CostModel{ReconnectLatency: 10 * time.Millisecond}
	net, err := New(16, 4, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumInternal() != 4 {
		t.Fatalf("NumInternal = %d, want 4", net.NumInternal())
	}
	victim := net.Root().Children()[1]
	if victim.IsLeaf() {
		t.Fatal("expected an internal child of the root")
	}
	adopted := len(victim.Children())
	if err := net.FailNode(victim.ID()); err != nil {
		t.Fatal(err)
	}
	// The victim's children now hang off the root, depth shrank, and the
	// reduction still covers every leaf exactly once.
	if got := len(net.Root().Children()); got != 3+adopted {
		t.Errorf("root has %d children, want %d", got, 3+adopted)
	}
	if want := 16 * 15 / 2; reduceSum(t, net) != want {
		t.Errorf("post-recovery reduce = %d, want %d", reduceSum(t, net), want)
	}
	if got := net.Recoveries(); got != 1 {
		t.Errorf("Recoveries = %d, want 1", got)
	}
	if got, want := net.Clock().Resource("mrnet/reconnect"), time.Duration(adopted)*costs.ReconnectLatency; got != want {
		t.Errorf("reconnect cost = %v, want %v", got, want)
	}
	// Idempotent: failing the same node again is a no-op.
	if err := net.FailNode(victim.ID()); err != nil {
		t.Errorf("re-failing a failed node: %v", err)
	}
	if net.Recoveries() != 1 {
		t.Errorf("Recoveries after no-op = %d, want 1", net.Recoveries())
	}
}

func TestFailNodeValidation(t *testing.T) {
	net := mustNew(t, 16, 4)
	if err := net.FailNode(0); err == nil {
		t.Error("failing the root must be rejected")
	}
	leaf := net.leaves[0]
	if err := net.FailNode(leaf.ID()); err == nil {
		t.Error("failing a leaf must be rejected")
	}
	if err := net.FailNode(9999); err == nil {
		t.Error("failing an unknown node must be rejected")
	}
}

func TestNodeCrashDuringReduceRecovers(t *testing.T) {
	net := mustNew(t, 16, 4)
	boom := errors.New("node crashed")
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetNode, faultinject.Rule{Times: 1, Err: boom}))
	if want := 16 * 15 / 2; reduceSum(t, net) != want {
		t.Fatalf("reduce under node crash = %d, want %d", reduceSum(t, net), want)
	}
	if got := net.Recoveries(); got != 1 {
		t.Errorf("Recoveries = %d, want 1", got)
	}
}

func TestNodeCrashDuringMulticastRecovers(t *testing.T) {
	net := mustNew(t, 16, 4)
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetNode, faultinject.Rule{Times: 1}))
	var mu sync.Mutex
	got := map[int]int{}
	err := Multicast(context.Background(), net, 7, nil,
		func(leaf int, v int) error {
			mu.Lock()
			got[leaf] = v
			mu.Unlock()
			return nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("delivered to %d leaves, want 16", len(got))
	}
	for leaf, v := range got {
		if v != 7 {
			t.Errorf("leaf %d received %d", leaf, v)
		}
	}
	if net.Recoveries() != 1 {
		t.Errorf("Recoveries = %d, want 1", net.Recoveries())
	}
}

// TestEveryInternalNodeCrashes arms a permanent node fault: every
// internal process eventually dies and the tree degenerates to the root
// plus its leaves — the reduction must still produce the exact answer.
func TestEveryInternalNodeCrashes(t *testing.T) {
	net := mustNew(t, 64, 4)
	internal := int64(net.NumInternal())
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetNode, faultinject.Rule{}))
	if want := 64 * 63 / 2; reduceSum(t, net) != want {
		t.Fatalf("reduce = %d, want %d", reduceSum(t, net), want)
	}
	if got := net.Recoveries(); got != internal {
		t.Errorf("Recoveries = %d, want %d (all internal nodes)", got, internal)
	}
	if d := net.Depth(); d != 2 {
		t.Errorf("Depth after total internal loss = %d, want 2", d)
	}
}

func TestHopFaultSurfacesAsError(t *testing.T) {
	net := mustNew(t, 8, 4)
	flaky := errors.New("link down")
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetHop, faultinject.Rule{After: 3, Err: flaky}))
	_, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) { return 1, nil },
		func(_ *Node, in []int) (int, error) { return len(in), nil },
		nil)
	if !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want wrapped hop fault", err)
	}
}

// TestAbortStopsHopCharges is the cancellation contract: when one leaf
// fails immediately, slow sibling subtrees must not keep charging hop
// costs to the simulated clock for a collective that has already
// aborted.
func TestAbortStopsHopCharges(t *testing.T) {
	costs := CostModel{HopLatency: time.Microsecond}
	net, err := New(4, 2, costs, nil) // root + 2 internal + 4 leaves
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("leaf dead")
	_, err = Reduce(context.Background(), net,
		func(leaf int) (int, error) {
			if leaf == 0 {
				return 0, boom
			}
			time.Sleep(100 * time.Millisecond)
			return leaf, nil
		},
		func(_ *Node, in []int) (int, error) { return 0, nil },
		nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want leaf failure", err)
	}
	if p := net.Stats().Packets; p != 0 {
		t.Errorf("aborted collective charged %d hops, want 0", p)
	}
}

func TestMulticastAbortStopsDescent(t *testing.T) {
	net := mustNew(t, 64, 4)
	boom := errors.New("leaf dead")
	var delivered sync.Map
	err := Multicast(context.Background(), net, 1, nil,
		func(leaf int, v int) error {
			if leaf == 0 {
				return boom
			}
			time.Sleep(50 * time.Millisecond)
			delivered.Store(leaf, true)
			return nil
		},
		nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want leaf failure", err)
	}
	// The first level of hops raced ahead of the failure, but the full
	// broadcast (84 edges) must not have completed.
	if p := net.Stats().Packets; p >= 84 {
		t.Errorf("aborted multicast charged %d hops, want < 84", p)
	}
}

// TestRecoveryPreservesLeafOrder checks the splice keeps DFS leaf order,
// which ordered reductions (partition offsets) depend on.
func TestRecoveryPreservesLeafOrder(t *testing.T) {
	net := mustNew(t, 60, 4)
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetNode, faultinject.Rule{Times: 3}))
	got, err := Reduce(context.Background(), net,
		func(leaf int) ([]int, error) { return []int{leaf}, nil },
		func(_ *Node, in [][]int) ([]int, error) {
			var out []int
			for _, part := range in {
				out = append(out, part...)
			}
			return out, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("gathered %d values, want 60", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d holds leaf %d: recovery broke tree order", i, v)
		}
	}
}
