package mrnet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustNew(t *testing.T, leaves, fanout int) *Network {
	t.Helper()
	net, err := New(leaves, fanout, CostModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestTopologyValidation(t *testing.T) {
	if _, err := New(0, 4, CostModel{}, nil); err == nil {
		t.Error("zero leaves must be rejected")
	}
	if _, err := New(4, 1, CostModel{}, nil); err == nil {
		t.Error("fanout 1 must be rejected")
	}
}

func TestFlatTopology(t *testing.T) {
	net := mustNew(t, 8, 256)
	if net.NumLeaves() != 8 {
		t.Errorf("NumLeaves = %d, want 8", net.NumLeaves())
	}
	if net.NumInternal() != 0 {
		t.Errorf("NumInternal = %d, want 0 (root can hold 8 children)", net.NumInternal())
	}
	if net.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", net.Depth())
	}
}

// TestTable1Topologies checks the internal-process counts of Table 1: with
// 256-way fanout, 512 leaves need 2 internal processes, 2048 need 8,
// 4096 need 16 and 8192 need 32; 128 and below need none.
func TestTable1Topologies(t *testing.T) {
	tests := []struct {
		leaves       int
		wantInternal int
	}{
		{2, 0}, {8, 0}, {32, 0}, {128, 0},
		{512, 2}, {2048, 8}, {4096, 16}, {8192, 32},
	}
	for _, tt := range tests {
		net := mustNew(t, tt.leaves, DefaultFanout)
		if got := net.NumInternal(); got != tt.wantInternal {
			t.Errorf("leaves=%d: NumInternal = %d, want %d", tt.leaves, got, tt.wantInternal)
		}
		if net.NumLeaves() != tt.leaves {
			t.Errorf("leaves=%d: NumLeaves = %d", tt.leaves, net.NumLeaves())
		}
		if d := net.Depth(); d > 3 {
			t.Errorf("leaves=%d: Depth = %d, want <= 3", tt.leaves, d)
		}
	}
}

func TestTopologyLeafCountProperty(t *testing.T) {
	f := func(leavesRaw uint16, fanoutRaw uint8) bool {
		leaves := int(leavesRaw)%2000 + 1
		fanout := int(fanoutRaw)%62 + 2
		net, err := New(leaves, fanout, CostModel{}, nil)
		if err != nil {
			return false
		}
		if net.NumLeaves() != leaves {
			return false
		}
		// Every node respects the fanout.
		for _, n := range net.nodes {
			if len(n.children) > fanout {
				return false
			}
		}
		// Leaf indices are dense and unique.
		seen := map[int]bool{}
		for _, l := range net.leaves {
			if l.leafIndex < 0 || l.leafIndex >= leaves || seen[l.leafIndex] {
				return false
			}
			seen[l.leafIndex] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, leaves := range []int{1, 2, 7, 64, 600} {
		net := mustNew(t, leaves, 8)
		got, err := Reduce(context.Background(), net,
			func(leaf int) (int, error) { return leaf, nil },
			func(_ *Node, in []int) (int, error) {
				s := 0
				for _, v := range in {
					s += v
				}
				return s, nil
			},
			nil)
		if err != nil {
			t.Fatal(err)
		}
		want := leaves * (leaves - 1) / 2
		if got != want {
			t.Errorf("leaves=%d: Reduce sum = %d, want %d", leaves, got, want)
		}
	}
}

func TestReduceOrdering(t *testing.T) {
	// Filters must see children in tree order so reductions over ordered
	// data (e.g. partition offsets) stay deterministic: gather all leaf
	// indices via concatenation and check the result is sorted.
	net := mustNew(t, 500, 6)
	got, err := Reduce(context.Background(), net,
		func(leaf int) ([]int, error) { return []int{leaf}, nil },
		func(_ *Node, in [][]int) ([]int, error) {
			var out []int
			for _, part := range in {
				out = append(out, part...)
			}
			return out, nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("gathered %d values, want 500", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Error("reduction must preserve leaf order (children combined in tree order)")
	}
}

func TestReduceLeafError(t *testing.T) {
	net := mustNew(t, 16, 4)
	boom := errors.New("boom")
	_, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) {
			if leaf == 11 {
				return 0, boom
			}
			return 0, nil
		},
		func(_ *Node, in []int) (int, error) { return 0, nil },
		nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestReduceFilterError(t *testing.T) {
	net := mustNew(t, 16, 4)
	boom := errors.New("filter exploded")
	_, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) { return leaf, nil },
		func(n *Node, in []int) (int, error) {
			return 0, boom
		},
		nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestMulticastBroadcast(t *testing.T) {
	net := mustNew(t, 100, 5)
	var mu sync.Mutex
	received := map[int]string{}
	err := Multicast(context.Background(), net, "hello",
		nil,
		func(leaf int, v string) error {
			mu.Lock()
			received[leaf] = v
			mu.Unlock()
			return nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != 100 {
		t.Fatalf("delivered to %d leaves, want 100", len(received))
	}
	for leaf, v := range received {
		if v != "hello" {
			t.Errorf("leaf %d received %q", leaf, v)
		}
	}
}

func TestMulticastSplitRouting(t *testing.T) {
	// Route a slice of per-leaf values down the tree: each node slices
	// its payload among children by leaf counts.
	net := mustNew(t, 300, 7)
	payload := make([]int, 300)
	for i := range payload {
		payload[i] = i * i
	}
	countLeaves := func(n *Node) int {
		if n.IsLeaf() {
			return 1
		}
		total := 0
		var rec func(*Node)
		rec = func(m *Node) {
			if m.IsLeaf() {
				total++
				return
			}
			for _, c := range m.Children() {
				rec(c)
			}
		}
		rec(n)
		return total
	}
	var mu sync.Mutex
	got := map[int]int{}
	err := Multicast(context.Background(), net, payload,
		func(n *Node, in []int) ([][]int, error) {
			out := make([][]int, len(n.Children()))
			off := 0
			for i, c := range n.Children() {
				k := countLeaves(c)
				out[i] = in[off : off+k]
				off += k
			}
			if off != len(in) {
				return nil, fmt.Errorf("payload size mismatch: %d != %d", off, len(in))
			}
			return out, nil
		},
		func(leaf int, v []int) error {
			if len(v) != 1 {
				return fmt.Errorf("leaf %d received %d values", leaf, len(v))
			}
			mu.Lock()
			got[leaf] = v[0]
			mu.Unlock()
			return nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 0; leaf < 300; leaf++ {
		if got[leaf] != leaf*leaf {
			t.Fatalf("leaf %d received %d, want %d", leaf, got[leaf], leaf*leaf)
		}
	}
}

func TestMulticastSplitArityError(t *testing.T) {
	net := mustNew(t, 8, 2)
	err := Multicast(context.Background(), net, 0,
		func(n *Node, in int) ([]int, error) { return []int{in}, nil }, // wrong arity
		func(leaf int, v int) error { return nil },
		nil)
	if err == nil {
		t.Error("split returning wrong arity must fail")
	}
}

func TestLeafRun(t *testing.T) {
	net := mustNew(t, 50, 8)
	got, err := LeafRun(context.Background(), net, func(leaf int) (int, error) { return leaf * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("leaf %d produced %d, want %d", i, v, i*2)
		}
	}
	boom := errors.New("leaf failure")
	_, err = LeafRun(context.Background(), net, func(leaf int) (int, error) {
		if leaf == 33 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestStartupCostScalesWithNodes(t *testing.T) {
	costs := CostModel{StartupBase: time.Millisecond, StartupPerNode: time.Millisecond}
	small, err := New(4, 256, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(512, 256, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := small.Clock().Resource("mrnet/startup")
	bt := big.Clock().Resource("mrnet/startup")
	if bt <= st {
		t.Errorf("startup for 512 leaves (%v) must exceed 4 leaves (%v)", bt, st)
	}
	// Linear model: 515 nodes + base vs 5 nodes + base.
	if want := time.Millisecond * (1 + 515); bt != want {
		t.Errorf("startup = %v, want %v", bt, want)
	}
}

func TestHopAccounting(t *testing.T) {
	costs := CostModel{HopLatency: time.Microsecond, BytesPerSec: 1e6}
	net, err := New(16, 4, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reduce(context.Background(), net,
		func(leaf int) (int, error) { return 1, nil },
		func(_ *Node, in []int) (int, error) { return len(in), nil },
		func(int) int64 { return 100 })
	if err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	// 16 leaves -> 4 internal -> root: 16 + 4 = 20 edges crossed.
	if st.Packets != 20 {
		t.Errorf("Packets = %d, want 20", st.Packets)
	}
	if st.Bytes != 2000 {
		t.Errorf("Bytes = %d, want 2000", st.Bytes)
	}
}

func TestNodeAccessorsAndTitanCosts(t *testing.T) {
	net := mustNew(t, 4, 2)
	root := net.Root()
	if root.ID() != 0 || root.Level() != 0 || root.IsLeaf() {
		t.Errorf("root accessors wrong: id=%d level=%d leaf=%v", root.ID(), root.Level(), root.IsLeaf())
	}
	child := root.Children()[0]
	if child.Level() != root.Level()+1 {
		t.Errorf("child level = %d", child.Level())
	}
	costs := TitanCosts()
	if costs.StartupPerNode <= 0 || costs.HopLatency <= 0 || costs.BytesPerSec <= 0 {
		t.Errorf("TitanCosts must model real costs: %+v", costs)
	}
}

func TestReduceRunsLeavesConcurrently(t *testing.T) {
	net := mustNew(t, 32, 8)
	start := time.Now()
	_, err := Reduce(context.Background(), net,
		func(leaf int) (int, error) {
			time.Sleep(10 * time.Millisecond)
			return 0, nil
		},
		func(_ *Node, in []int) (int, error) { return 0, nil },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("32 sleeping leaves took %v; they must run concurrently", elapsed)
	}
}
