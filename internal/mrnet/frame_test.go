package mrnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// mangle returns a valid encoded frame with fn applied to it.
func mangle(ftype byte, payload []byte, fn func([]byte)) []byte {
	buf := encodeFrame(ftype, payload)
	if fn != nil {
		fn(buf)
	}
	return buf
}

func TestReadFrameTypedErrors(t *testing.T) {
	payload := []byte("twelve bytes")
	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"clean close", nil, io.EOF},
		{"torn header", mangle(frameUp, payload, nil)[:5], ErrFrameTorn},
		{"torn payload", mangle(frameUp, payload, nil)[:frameHdrLen+4], ErrFrameTorn},
		{"bad magic", mangle(frameUp, payload, func(b []byte) { b[0] = 'X' }), nil},
		{"bad version", mangle(frameUp, payload, func(b []byte) { b[2] = frameVersion + 9 }), nil},
		{"oversized", mangle(frameUp, payload, func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:8], maxFrame+1)
		}), ErrFrameTooLarge},
		{"flipped payload bit", mangle(frameUp, payload, func(b []byte) { b[frameHdrLen] ^= 0x10 }), ErrFrameCorrupt},
		{"flipped crc bit", mangle(frameUp, payload, func(b []byte) { b[9] ^= 0x01 }), ErrFrameCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.wire))
			if err == nil {
				t.Fatal("readFrame accepted a damaged frame")
			}
			switch tc.name {
			case "bad magic", "bad version":
				if !integrity.IsProtocolMismatch(err) {
					t.Fatalf("err = %v, want a ProtocolError", err)
				}
				var pe *integrity.ProtocolError
				if !errors.As(err, &pe) || pe.Plane != "mrnet.tcp" {
					t.Fatalf("err = %v, want mrnet.tcp plane", err)
				}
			default:
				if !errors.Is(err, tc.want) {
					t.Fatalf("err = %v, want %v", err, tc.want)
				}
			}
			// A torn frame must never be mistaken for corruption (it
			// would trigger a pointless NACK to a dead peer) and vice
			// versa (a corrupt frame is healable, a torn one is not).
			if tc.want == ErrFrameTorn && errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("torn frame classified as corrupt: %v", err)
			}
			if tc.want == ErrFrameCorrupt && errors.Is(err, ErrFrameTorn) {
				t.Fatalf("corrupt frame classified as torn: %v", err)
			}
		})
	}
}

func TestReadFrameRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	ftype, got, err := readFrame(bytes.NewReader(encodeFrame(frameDown, payload)))
	if err != nil || ftype != frameDown || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip = (%d, %v, %v), want (%d, %v, nil)", ftype, got, err, frameDown, payload)
	}
}

// sumOverlay builds a small TCP overlay whose Reduce sums leaf indexes.
func sumOverlay(t *testing.T, leaves, fanout int) *TCPNetwork {
	t.Helper()
	net, err := NewTCP(leaves, fanout, TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			return []byte{byte(leaf + 1)}, nil
		},
		Filter: func(node *Node, in [][]byte) ([]byte, error) {
			var sum byte
			for _, p := range in {
				sum += p[0]
			}
			return []byte{sum}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	return net
}

// TestTCPFrameCorruptionNackHeals: wire bit flips are caught by the CRC
// trailer, NACKed, and healed by retransmission — the operation still
// returns the right answer, and the ledger balances.
func TestTCPFrameCorruptionNackHeals(t *testing.T) {
	net := sumOverlay(t, 4, 2)
	plan := faultinject.New(3).
		Arm(faultinject.MRNetFrame, faultinject.Rule{Corrupt: true, Times: 2})
	hub := telemetry.New(nil)
	net.SetFaultPlan(plan)
	net.SetTelemetry(hub)

	out, err := net.Reduce([]byte("go"))
	if err != nil {
		t.Fatalf("Reduce under frame corruption: %v", err)
	}
	if len(out) != 1 || out[0] != 1+2+3+4 {
		t.Fatalf("Reduce = %v, want [10]", out)
	}
	detected, masked, retransmits := net.FrameIntegrity()
	injected := plan.CorruptionsInjected(faultinject.MRNetFrame)
	if injected == 0 {
		t.Fatal("plan injected nothing — rule never fired")
	}
	if detected+masked != injected {
		t.Fatalf("ledger: injected %d, detected %d + masked %d", injected, detected, masked)
	}
	if detected == 0 || retransmits < detected {
		t.Fatalf("detected %d, retransmits %d: every detection should trigger a retransmit", detected, retransmits)
	}
	if got := hub.Counter(integrity.MetricDetected, "site", string(faultinject.MRNetFrame)).Value(); got != detected {
		t.Fatalf("hub integrity counter = %d, overlay detected = %d", got, detected)
	}
}

// TestTCPKillMidFrame: an error rule at mrnet.frame kills the sender
// mid-frame. The collective fails loudly (never hangs, never yields a
// wrong sum), and a rebuilt overlay — what the merge phase's retry does
// — succeeds.
func TestTCPKillMidFrame(t *testing.T) {
	net := sumOverlay(t, 4, 2)
	boom := errors.New("switch port died")
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetFrame, faultinject.Rule{Times: 1, Err: boom}))

	if _, err := net.Reduce([]byte("go")); err == nil {
		t.Fatal("Reduce succeeded over a connection killed mid-frame")
	}
	// Rebuild (the recovery path mrscan's merge-phase retry takes).
	net2 := sumOverlay(t, 4, 2)
	out, err := net2.Reduce([]byte("go"))
	if err != nil || out[0] != 10 {
		t.Fatalf("rebuilt overlay Reduce = (%v, %v), want ([10], nil)", out, err)
	}
}

// TestTCPPersistentCorruptionFailsLoudly: a link corrupting beyond the
// retransmit budget surfaces ErrFrameCorrupt instead of looping forever.
func TestTCPPersistentCorruptionFailsLoudly(t *testing.T) {
	net := sumOverlay(t, 2, 2)
	net.SetFaultPlan(faultinject.New(0).
		Arm(faultinject.MRNetFrame, faultinject.Rule{Corrupt: true})) // every frame
	_, err := net.Reduce([]byte("go"))
	if err == nil {
		t.Fatal("Reduce succeeded on a permanently corrupting link")
	}
	// The failure may surface typed (detected by the root itself) or as
	// a frameError relayed from a child — where the type is necessarily
	// lost crossing the wire but the message survives.
	if !errors.Is(err, ErrFrameCorrupt) && !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want a corruption failure", err)
	}
	detected, _, _ := net.FrameIntegrity()
	if detected < int64(maxFrameRetries)+1 {
		t.Fatalf("detected %d corruptions, want > retry budget %d", detected, maxFrameRetries)
	}
}
