package mrnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/simclock"
)

// This file implements MRNet-style topology specifications. MRNet
// instantiates trees from generated topology descriptions; the common
// shorthand is a fanout product like "16x32": the root fans out to 16
// internal processes, each of which fans out to 32 children — here,
// 512 leaves in a 3-level tree. Mr. Scan "organizes processes into a
// multi-level tree with an arbitrary topology" (§1); this parser provides
// the arbitrary part.

// ParseSpec parses a fanout-product topology specification such as
// "256", "2x16" or "4x8x8" into per-level fanouts, root first.
func ParseSpec(spec string) ([]int, error) {
	parts := strings.Split(strings.TrimSpace(spec), "x")
	if len(parts) == 0 || parts[0] == "" {
		return nil, fmt.Errorf("mrnet: empty topology spec %q", spec)
	}
	fanouts := make([]int, 0, len(parts))
	leaves := 1
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("mrnet: bad fanout %q in topology spec %q", p, spec)
		}
		leaves *= v
		if leaves > 1<<20 {
			return nil, fmt.Errorf("mrnet: topology %q implies %d+ leaves", spec, leaves)
		}
		fanouts = append(fanouts, v)
	}
	return fanouts, nil
}

// NewFromSpec builds a tree from a fanout-product specification: the
// number of leaves is the product of the fanouts, and every level is
// perfectly regular. A nil clock allocates a private one.
func NewFromSpec(spec string, costs CostModel, clock *simclock.Clock) (*Network, error) {
	fanouts, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewRegular(fanouts, costs, clock)
}

// NewRegular builds a tree with the given per-level fanouts (root
// first): fanouts [a, b, c] yields a root with a children, each with b
// children, each with c leaf children.
func NewRegular(fanouts []int, costs CostModel, clock *simclock.Clock) (*Network, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("mrnet: need at least one fanout level")
	}
	for _, f := range fanouts {
		if f < 1 {
			return nil, fmt.Errorf("mrnet: fanouts must be positive, got %v", fanouts)
		}
	}
	if clock == nil {
		clock = simclock.New()
	}
	net := &Network{costs: costs, clock: clock}
	net.root = &Node{id: 0, level: 0, leafIndex: -1}
	net.nodes = append(net.nodes, net.root)
	net.buildRegular(net.root, fanouts)
	net.clock.Charge("mrnet/startup",
		costs.StartupBase+time.Duration(len(net.nodes))*costs.StartupPerNode)
	return net, nil
}

func (net *Network) buildRegular(parent *Node, fanouts []int) {
	parent.firstLeaf = len(net.leaves)
	if len(fanouts) == 0 {
		// parent is a leaf.
		parent.leafIndex = len(net.leaves)
		parent.numLeaves = 1
		net.leaves = append(net.leaves, parent)
		return
	}
	for i := 0; i < fanouts[0]; i++ {
		child := &Node{
			id:        len(net.nodes),
			level:     parent.level + 1,
			parent:    parent,
			leafIndex: -1,
		}
		parent.children = append(parent.children, child)
		net.nodes = append(net.nodes, child)
		net.buildRegular(child, fanouts[1:])
	}
	parent.numLeaves = len(net.leaves) - parent.firstLeaf
}
