package mrnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/health"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// linkHealthConfig is tight enough that a flapping link quarantines
// within a couple of collectives, while MinObservations still guards
// against single-sample verdicts.
func linkHealthConfig() health.Config {
	return health.Config{SuspectAfter: 2, QuarantineAfter: 1, MinObservations: 2}
}

// TestFlappingLinkQuarantinedAndReparented: a flapping uplink on an
// internal node must be quarantined by the health tracker and converted
// into a preemptive re-parent of that node — before any collective
// hard-fails — while every reduction keeps returning the exact sum.
func TestFlappingLinkQuarantinedAndReparented(t *testing.T) {
	net, err := New(16, 4, CostModel{HopLatency: time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.New(net.Clock())
	net.SetTelemetry(h, "t")
	tracker := health.New(linkHealthConfig())
	net.SetHealth(tracker)
	budget := health.NewBudget(64, 0)
	net.SetRetryBudget(budget)

	victim := net.Root().Children()[1]
	if victim.IsLeaf() {
		t.Fatal("expected an internal child of the root")
	}
	// Every frame over the victim's uplink is dropped twice then passes:
	// two error observations plus a success whose error EWMA stays high.
	net.SetFaultPlan(faultinject.New(7).Arm(NICFaultSite(victim.ID()), faultinject.Rule{Flap: "ddu"}))

	want := 16 * 15 / 2
	for round := 0; round < 4; round++ {
		if got := reduceSum(t, net); got != want {
			t.Fatalf("round %d: reduce = %d, want %d", round, got, want)
		}
	}
	comp := "nic." + itoa(victim.ID())
	if !tracker.Quarantined(comp) {
		t.Fatalf("%s not quarantined; snapshot=%+v", comp, tracker.Snapshot())
	}
	if q := tracker.QuarantinedComponents(); len(q) != 1 {
		t.Fatalf("false quarantines: %v", q)
	}
	if got := net.Recoveries(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1 (preemptive re-parent)", got)
	}
	if budget.Spent() == 0 {
		t.Fatal("retransmits consumed no retry-budget tokens")
	}

	// The sick link is out of the tree: further rounds neither retransmit
	// nor spend budget.
	retransmits := h.Counter("mrnet_retransmits_total", "net", "t").Value()
	spent := budget.Spent()
	for round := 0; round < 3; round++ {
		if got := reduceSum(t, net); got != want {
			t.Fatalf("post-recovery round %d: reduce = %d, want %d", round, got, want)
		}
	}
	if got := h.Counter("mrnet_retransmits_total", "net", "t").Value(); got != retransmits {
		t.Fatalf("retransmits kept growing after re-parent: %d -> %d", retransmits, got)
	}
	if got := budget.Spent(); got != spent {
		t.Fatalf("budget kept draining after re-parent: %d -> %d", spent, got)
	}
}

// TestFlappingLinkMulticastReparent: the same preemptive re-parent path
// must work for downstream traffic, with every leaf still delivered.
func TestFlappingLinkMulticastReparent(t *testing.T) {
	net, err := New(16, 4, CostModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker := health.New(linkHealthConfig())
	net.SetHealth(tracker)
	victim := net.Root().Children()[2]
	net.SetFaultPlan(faultinject.New(11).Arm(NICFaultSite(victim.ID()), faultinject.Rule{Flap: "ddu"}))

	got := make([]int, net.NumLeaves())
	for round := 0; round < 4; round++ {
		payload := 100 + round
		err := Multicast(context.Background(), net, payload, nil,
			func(leaf int, v int) error { got[leaf] = v; return nil },
			func(int) int64 { return 8 })
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for leaf, v := range got {
			if v != payload {
				t.Fatalf("round %d: leaf %d got %d, want %d", round, leaf, v, payload)
			}
		}
	}
	if !tracker.Quarantined("nic." + itoa(victim.ID())) {
		t.Fatalf("flapping multicast link not quarantined; snapshot=%+v", tracker.Snapshot())
	}
	if got := net.Recoveries(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
}

// TestRetransmitBudgetDenialFailsLoud: with the retry budget exhausted,
// a lost frame must surface ErrBudgetExhausted instead of silently
// retrying.
func TestRetransmitBudgetDenialFailsLoud(t *testing.T) {
	net, err := New(4, 4, CostModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.SetRetryBudget(health.NewBudget(0, 0))
	leaf := net.Root().Children()[0]
	net.SetFaultPlan(faultinject.New(3).Arm(NICFaultSite(leaf.ID()), faultinject.Rule{Flap: "du"}))

	_, err = Reduce(context.Background(), net,
		func(leaf int) (int, error) { return leaf, nil },
		func(_ *Node, in []int) (int, error) {
			s := 0
			for _, v := range in {
				s += v
			}
			return s, nil
		},
		nil)
	if err == nil {
		t.Fatal("reduce succeeded with a dropped frame and no retry budget")
	}
	if !errors.Is(err, health.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

// TestNICCorruptionLedgerBalances: corruption injected at a per-link NIC
// site is detected under that site's own label, healed by retransmit,
// and — being transient — never quarantines the link under the default
// hysteresis.
func TestNICCorruptionLedgerBalances(t *testing.T) {
	net, err := New(4, 4, CostModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := telemetry.New(net.Clock())
	net.SetTelemetry(h, "t")
	tracker := health.New(health.Config{})
	net.SetHealth(tracker)
	leaf := net.Root().Children()[1]
	site := NICFaultSite(leaf.ID())
	plan := faultinject.New(5).Arm(site, faultinject.Rule{Corrupt: true, Times: 2})
	net.SetFaultPlan(plan)

	want := 4 * 3 / 2
	for round := 0; round < 3; round++ {
		got, err := Reduce(context.Background(), net,
			func(leaf int) (int, error) { return leaf, nil },
			func(_ *Node, in []int) (int, error) {
				s := 0
				for _, v := range in {
					s += v
				}
				return s, nil
			},
			func(int) int64 { return 64 })
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got != want {
			t.Fatalf("round %d: reduce = %d, want %d", round, got, want)
		}
	}
	injected := plan.CorruptionsInjected(site)
	if injected != 2 {
		t.Fatalf("injected = %d, want 2", injected)
	}
	if detected := h.Counter(integrity.MetricDetected, "site", string(site)).Value(); detected != injected {
		t.Fatalf("ledger unbalanced: injected %d, detected %d", injected, detected)
	}
	if q := tracker.QuarantinedComponents(); len(q) != 0 {
		t.Fatalf("transient corruption quarantined %v", q)
	}
}

// TestHealthyFleetNoFalseQuarantines: with tracking on and no faults,
// repeated collectives must leave every link healthy.
func TestHealthyFleetNoFalseQuarantines(t *testing.T) {
	net, err := New(16, 4, CostModel{HopLatency: time.Microsecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tracker := health.New(linkHealthConfig())
	net.SetHealth(tracker)
	want := 16 * 15 / 2
	for round := 0; round < 5; round++ {
		if got := reduceSum(t, net); got != want {
			t.Fatalf("round %d: reduce = %d, want %d", round, got, want)
		}
	}
	for _, v := range tracker.Snapshot() {
		if v.State != health.Healthy {
			t.Fatalf("link %s is %v on a healthy fleet", v.Component, v.State)
		}
	}
}

// itoa avoids strconv for tiny non-negative ints in test labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
