package mrnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/integrity"
)

// FuzzReadFrame drives the wire-frame decoder with torn, bit-flipped,
// and hostile inputs. Two properties must hold: the decoder never
// panics, and every failure is one of the documented typed modes (EOF,
// ErrFrameTorn, ErrFrameTooLarge, ErrFrameCorrupt, or a ProtocolError)
// — the NACK/retransmit protocol in recv dispatches on these types, so
// an untyped error would silently disable frame healing. A successful
// decode must round-trip: re-encoding (ftype, payload) reproduces the
// consumed prefix byte for byte.
func FuzzReadFrame(f *testing.F) {
	f.Add(encodeFrame(frameUp, []byte("leaf payload")))
	f.Add(encodeFrame(frameDown, nil))
	f.Add(encodeFrame(frameNack, nil))
	hello := encodeFrame(frameHello, []byte{7, 0, 0, 0})
	f.Add(hello)
	f.Add(hello[:frameHdrLen-3]) // torn mid-header
	f.Add(hello[:frameHdrLen+1]) // torn mid-payload
	flipped := encodeFrame(frameUp, []byte("corrupt me"))
	flipped[frameHdrLen+2] ^= 0x08 // payload bit flip: CRC must catch it
	f.Add(flipped)
	oversized := encodeFrame(frameUp, nil)
	binary.LittleEndian.PutUint32(oversized[4:8], maxFrame+1)
	f.Add(oversized)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ftype, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			var pe *integrity.ProtocolError
			switch {
			case errors.Is(err, io.EOF),
				errors.Is(err, ErrFrameTorn),
				errors.Is(err, ErrFrameTooLarge),
				errors.Is(err, ErrFrameCorrupt),
				errors.As(err, &pe):
			default:
				t.Fatalf("untyped readFrame error: %v", err)
			}
			// The heal protocol depends on torn and corrupt staying
			// distinct: corrupt is NACKable, torn means a dead peer.
			if errors.Is(err, ErrFrameTorn) && errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("error is both torn and corrupt: %v", err)
			}
			return
		}
		enc := encodeFrame(ftype, payload)
		if len(data) < len(enc) || !bytes.Equal(data[:len(enc)], enc) {
			t.Fatalf("accepted frame (type %d, %d-byte payload) does not re-encode to the consumed bytes",
				ftype, len(payload))
		}
	})
}
