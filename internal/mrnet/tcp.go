package mrnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file implements a real-socket instantiation of the overlay: every
// tree node is a goroutine "process" owning actual TCP connections to its
// parent and children over loopback, with length-prefixed frames. The
// in-process Network is the fast simulation used by the pipeline; the
// TCPNetwork demonstrates that the same tree protocol runs over a real
// transport, as MRNet does on a cluster.
//
// The protocol is deliberately MRNet-shaped: downstream frames fan out
// from the root (multicast / operation start), upstream frames are
// combined at every internal node by a filter before continuing toward
// the root.

// frame types.
const (
	frameDown  = 1 // payload travelling root -> leaves
	frameUp    = 2 // payload travelling leaves -> root
	frameError = 3 // error travelling toward the root
)

// maxFrame bounds a frame payload (16 MiB) to catch protocol corruption.
const maxFrame = 16 << 20

// TCPHandlers are the application callbacks of a TCP overlay instance.
type TCPHandlers struct {
	// Leaf runs at every leaf when a downstream frame arrives: it
	// receives the downstream payload and returns the leaf's upstream
	// contribution.
	Leaf func(leaf int, down []byte) ([]byte, error)
	// Filter runs at every internal node (and the root) to combine the
	// upstream payloads of its children, ordered by child position.
	Filter func(node *Node, in [][]byte) ([]byte, error)
}

// TCPNetwork is a process tree over real TCP connections.
type TCPNetwork struct {
	tree     *Network
	handlers TCPHandlers

	mu      sync.Mutex // one collective operation at a time
	nodes   []*tcpNode
	rootUp  chan upMsg
	closed  bool
	closeMu sync.Mutex
}

type upMsg struct {
	payload []byte
	err     error
}

// tcpNode is one "process": its connection to the parent and its accepted
// child connections.
type tcpNode struct {
	node     *Node
	parent   net.Conn   // nil at the root
	children []net.Conn // index-aligned with node.Children()
}

// NewTCP builds a tree with the given leaf count and fanout where every
// edge is a TCP connection on the loopback interface. Handlers must be
// provided before any operation runs.
func NewTCP(leaves, fanout int, handlers TCPHandlers) (*TCPNetwork, error) {
	if handlers.Leaf == nil || handlers.Filter == nil {
		return nil, errors.New("mrnet: TCP overlay requires Leaf and Filter handlers")
	}
	tree, err := New(leaves, fanout, CostModel{}, nil)
	if err != nil {
		return nil, err
	}
	t := &TCPNetwork{
		tree:     tree,
		handlers: handlers,
		rootUp:   make(chan upMsg, 1),
	}
	t.nodes = make([]*tcpNode, tree.NumNodes())
	for _, n := range tree.nodes {
		t.nodes[n.id] = &tcpNode{node: n}
	}
	if err := t.connect(); err != nil {
		t.Close()
		return nil, err
	}
	for _, tn := range t.nodes {
		go t.serve(tn)
	}
	return t, nil
}

// connect wires parent-child edges: every internal node listens, its
// children dial in and identify themselves with a hello frame carrying
// their node ID.
func (t *TCPNetwork) connect() error {
	for _, tn := range t.nodes {
		n := tn.node
		if n.IsLeaf() {
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("mrnet: listen for node %d: %w", n.id, err)
		}
		tn.children = make([]net.Conn, len(n.children))
		addr := ln.Addr().String()

		var wg sync.WaitGroup
		var acceptErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range n.children {
				conn, err := ln.Accept()
				if err != nil {
					acceptErr = err
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptErr = fmt.Errorf("reading hello: %w", err)
					return
				}
				childID := int(binary.LittleEndian.Uint32(hello[:]))
				placed := false
				for i, c := range n.children {
					if c.id == childID {
						tn.children[i] = conn
						placed = true
						break
					}
				}
				if !placed {
					acceptErr = fmt.Errorf("unexpected child %d at node %d", childID, n.id)
					return
				}
			}
		}()
		for _, c := range n.children {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				ln.Close()
				return fmt.Errorf("mrnet: child %d dialing node %d: %w", c.id, n.id, err)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(c.id))
			if _, err := conn.Write(hello[:]); err != nil {
				ln.Close()
				return fmt.Errorf("mrnet: child %d hello: %w", c.id, err)
			}
			t.nodes[c.id].parent = conn
		}
		wg.Wait()
		ln.Close()
		if acceptErr != nil {
			return fmt.Errorf("mrnet: accepting children of node %d: %w", n.id, acceptErr)
		}
	}
	return nil
}

// writeFrame emits [len][type][payload].
func writeFrame(w io.Writer, ftype byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = ftype
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mrnet: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// serve is a node's process loop: wait for a downstream frame, run the
// subtree's share of the operation, send the combined result upstream.
func (t *TCPNetwork) serve(tn *tcpNode) {
	n := tn.node
	for {
		var down []byte
		if n.id == 0 {
			// The root is driven by Reduce() via rootDown.
			return // root has no serve loop; Reduce operates it directly
		}
		ftype, payload, err := readFrame(tn.parent)
		if err != nil {
			return // connection closed: shutdown
		}
		if ftype != frameDown {
			continue
		}
		down = payload
		up, err := t.runSubtree(tn, down)
		if err != nil {
			_ = writeFrame(tn.parent, frameError, []byte(err.Error()))
			continue
		}
		if err := writeFrame(tn.parent, frameUp, up); err != nil {
			return
		}
	}
}

// runSubtree executes one operation in n's subtree: forward downstream to
// children, gather their upstream frames, combine with the filter (or run
// the leaf handler).
func (t *TCPNetwork) runSubtree(tn *tcpNode, down []byte) ([]byte, error) {
	n := tn.node
	if n.IsLeaf() {
		out, err := t.handlers.Leaf(n.leafIndex, down)
		if err != nil {
			return nil, fmt.Errorf("leaf %d: %w", n.leafIndex, err)
		}
		return out, nil
	}
	for _, conn := range tn.children {
		if err := writeFrame(conn, frameDown, down); err != nil {
			return nil, fmt.Errorf("node %d fanout: %w", n.id, err)
		}
	}
	parts := make([][]byte, len(tn.children))
	for i, conn := range tn.children {
		ftype, payload, err := readFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("node %d gathering child %d: %w", n.id, i, err)
		}
		if ftype == frameError {
			return nil, errors.New(string(payload))
		}
		parts[i] = payload
	}
	out, err := t.handlers.Filter(n, parts)
	if err != nil {
		return nil, fmt.Errorf("filter at node %d: %w", n.id, err)
	}
	return out, nil
}

// Reduce runs one collective operation: the downstream payload is
// multicast to every leaf, each leaf's Leaf handler produces an upstream
// payload, and Filter combines payloads at every internal level. The
// root's combined payload is returned.
func (t *TCPNetwork) Reduce(down []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeMu.Lock()
	closed := t.closed
	t.closeMu.Unlock()
	if closed {
		return nil, errors.New("mrnet: TCP overlay closed")
	}
	return t.runSubtree(t.nodes[0], down)
}

// Tree exposes the underlying topology (for assertions and fan-out info).
func (t *TCPNetwork) Tree() *Network { return t.tree }

// Close tears the overlay down; in-flight operations fail.
func (t *TCPNetwork) Close() {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, tn := range t.nodes {
		if tn == nil {
			continue
		}
		if tn.parent != nil {
			tn.parent.Close()
		}
		for _, c := range tn.children {
			if c != nil {
				c.Close()
			}
		}
	}
}
