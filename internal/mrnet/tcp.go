package mrnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/telemetry"
)

// This file implements a real-socket instantiation of the overlay: every
// tree node is a goroutine "process" owning actual TCP connections to its
// parent and children over loopback, with length-prefixed frames. The
// in-process Network is the fast simulation used by the pipeline; the
// TCPNetwork demonstrates that the same tree protocol runs over a real
// transport, as MRNet does on a cluster.
//
// The protocol is deliberately MRNet-shaped: downstream frames fan out
// from the root (multicast / operation start), upstream frames are
// combined at every internal node by a filter before continuing toward
// the root.
//
// Wire format (one frame):
//
//	[2B magic "MR"][1B version][1B type][4B LE payload len][4B LE CRC32C][payload]
//
// The magic + version bytes reject peers speaking another protocol
// revision with a clear ProtocolError instead of a garbled decode. The
// CRC32C trailer covers the payload: a receiver that computes a
// different sum answers with a NACK frame, and the sender retransmits —
// bounded by maxFrameRetries, after which the exchange fails loudly.
// NACKs themselves are payload-free control frames and are never
// injected with corruption (modeling the link layer's protected control
// channel).

// frame types.
const (
	frameDown  = 1 // payload travelling root -> leaves
	frameUp    = 2 // payload travelling leaves -> root
	frameError = 3 // error travelling toward the root
	frameNack  = 4 // checksum reject: resend your last frame
	frameHello = 5 // child handshake carrying its node ID
)

// Frame header layout.
const (
	frameMagic   = "MR"
	frameVersion = 1
	frameHdrLen  = 12
)

// maxFrame bounds a frame payload (16 MiB) to catch protocol corruption.
const maxFrame = 16 << 20

// maxFrameRetries bounds the NACK/retransmit dance for one frame: a
// link that keeps corrupting past this budget fails the operation.
const maxFrameRetries = 3

// Typed frame errors, shared with the integrity package so errors.Is
// works across planes:
//
//   - ErrFrameTorn: the connection died mid-frame (peer crash) — the
//     frame is incomplete, not wrong.
//   - ErrFrameTooLarge: the length field exceeds maxFrame — a corrupted
//     header or a hostile peer, never retried.
//   - ErrFrameCorrupt: the payload failed its CRC32C — retransmitted up
//     to maxFrameRetries times before surfacing.
var (
	ErrFrameTorn     = integrity.ErrTorn
	ErrFrameTooLarge = integrity.ErrTooLarge
	ErrFrameCorrupt  = integrity.ErrChecksum
)

// TCPHandlers are the application callbacks of a TCP overlay instance.
type TCPHandlers struct {
	// Leaf runs at every leaf when a downstream frame arrives: it
	// receives the downstream payload and returns the leaf's upstream
	// contribution.
	Leaf func(leaf int, down []byte) ([]byte, error)
	// Filter runs at every internal node (and the root) to combine the
	// upstream payloads of its children, ordered by child position.
	Filter func(node *Node, in [][]byte) ([]byte, error)
}

// TCPNetwork is a process tree over real TCP connections.
type TCPNetwork struct {
	tree     *Network
	handlers TCPHandlers

	mu      sync.Mutex // one collective operation at a time
	nodes   []*tcpNode
	closed  bool
	closeMu sync.Mutex

	// planMu guards the fault plan and telemetry hub below.
	planMu sync.Mutex
	plan   *faultinject.Plan
	hub    *telemetry.Hub

	// Frame-integrity ledger (atomics so they are readable without the
	// hub): corrupted frames caught by the CRC trailer, flips that died
	// unread with their connection, and the retransmits triggered.
	detected    atomic.Int64
	masked      atomic.Int64
	retransmits atomic.Int64
}

// tcpNode is one "process": its connection to the parent and its accepted
// child connections.
type tcpNode struct {
	node     *Node
	parent   *frameConn   // nil at the root
	children []*frameConn // index-aligned with node.Children()
}

// frameConn wraps one edge's connection with the last frame sent on it,
// so a NACK from the peer can be answered with a retransmit. Each
// frameConn is used by a single node goroutine at a time.
type frameConn struct {
	net  *TCPNetwork
	conn net.Conn
	// last frame sent, pre-corruption: retransmits resend the clean
	// payload (the flip happened on the wire, not in the send buffer).
	lastType    byte
	lastPayload []byte
}

// NewTCP builds a tree with the given leaf count and fanout where every
// edge is a TCP connection on the loopback interface. Handlers must be
// provided before any operation runs.
func NewTCP(leaves, fanout int, handlers TCPHandlers) (*TCPNetwork, error) {
	if handlers.Leaf == nil || handlers.Filter == nil {
		return nil, errors.New("mrnet: TCP overlay requires Leaf and Filter handlers")
	}
	tree, err := New(leaves, fanout, CostModel{}, nil)
	if err != nil {
		return nil, err
	}
	t := &TCPNetwork{
		tree:     tree,
		handlers: handlers,
	}
	t.nodes = make([]*tcpNode, tree.NumNodes())
	for _, n := range tree.nodes {
		t.nodes[n.id] = &tcpNode{node: n}
	}
	if err := t.connect(); err != nil {
		t.Close()
		return nil, err
	}
	for _, tn := range t.nodes {
		go t.serve(tn)
	}
	return t, nil
}

// SetFaultPlan installs the fault plan consulted at the mrnet.frame
// site on every frame send: error rules kill the sender mid-frame (the
// peer sees a torn frame), corrupt rules flip a bit of the wire bytes
// (the peer's CRC check catches it and NACKs). Install before running
// operations; a nil plan disables injection.
func (t *TCPNetwork) SetFaultPlan(p *faultinject.Plan) {
	t.planMu.Lock()
	t.plan = p
	t.planMu.Unlock()
}

// SetTelemetry mirrors the overlay's integrity counters into a run
// hub: integrity_corruptions_detected{site=mrnet.frame} and
// mrnet_frame_retransmits_total.
func (t *TCPNetwork) SetTelemetry(h *telemetry.Hub) {
	t.planMu.Lock()
	t.hub = h
	t.planMu.Unlock()
}

func (t *TCPNetwork) faultPlan() *faultinject.Plan {
	t.planMu.Lock()
	defer t.planMu.Unlock()
	return t.plan
}

// FrameIntegrity reports the overlay's corruption ledger: CRC-detected
// frames, flips masked by a dead connection, and the retransmits that
// healed detections.
func (t *TCPNetwork) FrameIntegrity() (detected, masked, retransmits int64) {
	return t.detected.Load(), t.masked.Load(), t.retransmits.Load()
}

// noteMasked records a flip that no verifier ever saw.
func (t *TCPNetwork) noteMasked() {
	t.masked.Add(1)
	t.planMu.Lock()
	hub := t.hub
	t.planMu.Unlock()
	hub.Counter(integrity.MetricMasked, "site", string(faultinject.MRNetFrame)).Inc()
}

// noteDetected records one CRC-caught frame corruption.
func (t *TCPNetwork) noteDetected(nodeID int, healed bool) {
	t.detected.Add(1)
	t.planMu.Lock()
	hub := t.hub
	t.planMu.Unlock()
	hub.Counter(integrity.MetricDetected, "site", string(faultinject.MRNetFrame)).Inc()
	hub.Event(nil, "integrity.corruption.detected",
		telemetry.String("site", string(faultinject.MRNetFrame)),
		telemetry.Int("node", nodeID),
		telemetry.Bool("healed", healed))
}

// connect wires parent-child edges: every internal node listens, its
// children dial in and identify themselves with a hello frame carrying
// their node ID. The hello is a regular protocol frame, so a peer from
// another protocol revision is rejected with a ProtocolError at
// handshake time instead of failing obscurely mid-operation.
func (t *TCPNetwork) connect() error {
	for _, tn := range t.nodes {
		n := tn.node
		if n.IsLeaf() {
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("mrnet: listen for node %d: %w", n.id, err)
		}
		tn.children = make([]*frameConn, len(n.children))
		addr := ln.Addr().String()

		var wg sync.WaitGroup
		var acceptErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range n.children {
				conn, err := ln.Accept()
				if err != nil {
					acceptErr = err
					return
				}
				ftype, payload, err := readFrame(conn)
				if err != nil {
					acceptErr = fmt.Errorf("reading hello: %w", err)
					return
				}
				if ftype != frameHello || len(payload) != 4 {
					acceptErr = fmt.Errorf("bad hello frame (type %d, %d bytes)", ftype, len(payload))
					return
				}
				childID := int(binary.LittleEndian.Uint32(payload))
				placed := false
				for i, c := range n.children {
					if c.id == childID {
						tn.children[i] = &frameConn{net: t, conn: conn}
						placed = true
						break
					}
				}
				if !placed {
					acceptErr = fmt.Errorf("unexpected child %d at node %d", childID, n.id)
					return
				}
			}
		}()
		for _, c := range n.children {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				ln.Close()
				return fmt.Errorf("mrnet: child %d dialing node %d: %w", c.id, n.id, err)
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(c.id))
			if err := writeFrame(conn, frameHello, hello[:]); err != nil {
				ln.Close()
				return fmt.Errorf("mrnet: child %d hello: %w", c.id, err)
			}
			t.nodes[c.id].parent = &frameConn{net: t, conn: conn}
		}
		wg.Wait()
		ln.Close()
		if acceptErr != nil {
			return fmt.Errorf("mrnet: accepting children of node %d: %w", n.id, acceptErr)
		}
	}
	return nil
}

// encodeFrame assembles a full wire frame: header (magic, version,
// type, length, CRC32C of the payload) followed by the payload.
func encodeFrame(ftype byte, payload []byte) []byte {
	buf := make([]byte, frameHdrLen+len(payload))
	copy(buf, frameMagic)
	buf[2] = frameVersion
	buf[3] = ftype
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], integrity.Checksum(payload))
	copy(buf[frameHdrLen:], payload)
	return buf
}

// writeFrame emits one clean frame with no fault injection — used for
// the handshake and for NACK control frames.
func writeFrame(w io.Writer, ftype byte, payload []byte) error {
	_, err := w.Write(encodeFrame(ftype, payload))
	return err
}

// send transmits a frame on the edge, remembering it for retransmit,
// and consults the fault plan: an error rule kills the sender mid-frame
// (half the frame hits the wire, then the connection closes — the
// peer's read tears); a corrupt rule flips one wire bit downstream of
// the CRC computation, to be caught by the peer.
func (fc *frameConn) send(ftype byte, payload []byte) error {
	fc.lastType, fc.lastPayload = ftype, payload
	return fc.transmit(ftype, payload)
}

// resend retransmits the last frame (clean bytes, fresh injection
// consult — a transient wire fault does not persist in the buffer).
func (fc *frameConn) resend() error {
	return fc.transmit(fc.lastType, fc.lastPayload)
}

func (fc *frameConn) transmit(ftype byte, payload []byte) error {
	buf := encodeFrame(ftype, payload)
	plan := fc.net.faultPlan()
	if err := plan.Check(faultinject.MRNetFrame); err != nil {
		// Process death mid-frame: half a frame, then a dead socket.
		fc.conn.Write(buf[:len(buf)/2])
		fc.conn.Close()
		return fmt.Errorf("mrnet: node died mid-frame: %w", err)
	}
	injected := false
	if c := plan.CorruptCheck(faultinject.MRNetFrame, int64(len(payload))); c != nil {
		// Flip inside the CRC-covered region: the payload if there is
		// one, a trailer byte of the checksum itself otherwise. Either
		// way the receiver's verification fires.
		if len(payload) > 0 {
			buf[frameHdrLen+c.Offset] ^= 1 << c.Bit
		} else {
			buf[8+int(c.Offset)%4] ^= 1 << c.Bit
		}
		injected = true
	}
	_, err := fc.conn.Write(buf)
	if err != nil && injected {
		// The flipped frame never reached the peer (dead socket): the
		// corruption is masked, not escaped, and the ledger balances.
		fc.net.noteMasked()
	}
	return err
}

// readFrame reads one frame, returning a typed error per failure mode:
// io.EOF for a clean close between frames, ErrFrameTorn for a
// connection dropped mid-frame, a ProtocolError for a magic/version
// mismatch, ErrFrameTooLarge for an oversized length field, and
// ErrFrameCorrupt for a payload failing its CRC32C.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("mrnet: frame header: %w (%v)", ErrFrameTorn, err)
	}
	if string(hdr[:2]) != frameMagic {
		return 0, nil, &integrity.ProtocolError{
			Plane: "mrnet.tcp", Field: "magic",
			Got: uint64(binary.LittleEndian.Uint16(hdr[:2])), Want: uint64('M') | uint64('R')<<8,
		}
	}
	if hdr[2] != frameVersion {
		return 0, nil, &integrity.ProtocolError{
			Plane: "mrnet.tcp", Field: "version", Got: uint64(hdr[2]), Want: frameVersion,
		}
	}
	ftype := hdr[3]
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("mrnet: frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[8:12])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("mrnet: frame payload (%d of %d bytes): %w (%v)", 0, n, ErrFrameTorn, err)
	}
	if integrity.Checksum(payload) != wantCRC {
		return 0, nil, fmt.Errorf("mrnet: frame type %d: %w", ftype, ErrFrameCorrupt)
	}
	return ftype, payload, nil
}

// recv reads the next application frame off the edge, running the
// receiver's half of the integrity protocol: a CRC failure sends a NACK
// and rereads (bounded), an incoming NACK retransmits our own last
// frame (bounded). Every CRC failure is counted as a detection.
func (t *TCPNetwork) recv(fc *frameConn, nodeID int) (byte, []byte, error) {
	nacks, resends := 0, 0
	for {
		ftype, payload, err := readFrame(fc.conn)
		if errors.Is(err, ErrFrameCorrupt) {
			nacks++
			healed := nacks <= maxFrameRetries
			t.noteDetected(nodeID, healed)
			if !healed {
				return 0, nil, fmt.Errorf("mrnet: node %d: giving up after %d corrupt frames: %w", nodeID, nacks, ErrFrameCorrupt)
			}
			if werr := writeFrame(fc.conn, frameNack, nil); werr != nil {
				return 0, nil, werr
			}
			continue
		}
		if err != nil {
			return 0, nil, err
		}
		if ftype == frameNack {
			resends++
			if resends > maxFrameRetries {
				return 0, nil, fmt.Errorf("mrnet: node %d: peer rejected %d retransmits: %w", nodeID, resends, ErrFrameCorrupt)
			}
			t.retransmits.Add(1)
			t.planMu.Lock()
			hub := t.hub
			t.planMu.Unlock()
			hub.Counter("mrnet_frame_retransmits_total").Inc()
			if werr := fc.resend(); werr != nil {
				return 0, nil, werr
			}
			continue
		}
		return ftype, payload, nil
	}
}

// serve is a node's process loop: wait for a downstream frame, run the
// subtree's share of the operation, send the combined result upstream.
func (t *TCPNetwork) serve(tn *tcpNode) {
	n := tn.node
	if n.id == 0 {
		return // root has no serve loop; Reduce operates it directly
	}
	for {
		ftype, payload, err := t.recv(tn.parent, n.id)
		if err != nil {
			if errors.Is(err, ErrFrameCorrupt) {
				// The down link is persistently corrupting: surface it
				// to the parent and stay alive for the next operation.
				_ = writeFrame(tn.parent.conn, frameError, []byte(err.Error()))
				continue
			}
			return // connection closed or torn: shutdown
		}
		if ftype != frameDown {
			continue
		}
		up, err := t.runSubtree(tn, payload)
		if err != nil {
			_ = tn.parent.send(frameError, []byte(err.Error()))
			continue
		}
		if err := tn.parent.send(frameUp, up); err != nil {
			return
		}
	}
}

// runSubtree executes one operation in n's subtree: forward downstream to
// children, gather their upstream frames, combine with the filter (or run
// the leaf handler).
func (t *TCPNetwork) runSubtree(tn *tcpNode, down []byte) ([]byte, error) {
	n := tn.node
	if n.IsLeaf() {
		out, err := t.handlers.Leaf(n.leafIndex, down)
		if err != nil {
			return nil, fmt.Errorf("leaf %d: %w", n.leafIndex, err)
		}
		return out, nil
	}
	for _, fc := range tn.children {
		if err := fc.send(frameDown, down); err != nil {
			return nil, fmt.Errorf("node %d fanout: %w", n.id, err)
		}
	}
	parts := make([][]byte, len(tn.children))
	for i, fc := range tn.children {
		ftype, payload, err := t.recv(fc, n.id)
		if err != nil {
			return nil, fmt.Errorf("node %d gathering child %d: %w", n.id, i, err)
		}
		if ftype == frameError {
			return nil, errors.New(string(payload))
		}
		parts[i] = payload
	}
	out, err := t.handlers.Filter(n, parts)
	if err != nil {
		return nil, fmt.Errorf("filter at node %d: %w", n.id, err)
	}
	return out, nil
}

// Reduce runs one collective operation: the downstream payload is
// multicast to every leaf, each leaf's Leaf handler produces an upstream
// payload, and Filter combines payloads at every internal level. The
// root's combined payload is returned.
func (t *TCPNetwork) Reduce(down []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closeMu.Lock()
	closed := t.closed
	t.closeMu.Unlock()
	if closed {
		return nil, errors.New("mrnet: TCP overlay closed")
	}
	return t.runSubtree(t.nodes[0], down)
}

// Tree exposes the underlying topology (for assertions and fan-out info).
func (t *TCPNetwork) Tree() *Network { return t.tree }

// Close tears the overlay down; in-flight operations fail.
func (t *TCPNetwork) Close() {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, tn := range t.nodes {
		if tn == nil {
			continue
		}
		if tn.parent != nil {
			tn.parent.conn.Close()
		}
		for _, c := range tn.children {
			if c != nil {
				c.conn.Close()
			}
		}
	}
}
