// Package mrnet implements a tree-based multicast/reduction overlay
// network in the style of MRNet (Roth, Arnold & Miller, SC'03), the
// process-tree substrate Mr. Scan runs on.
//
// A Network is a tree of Nodes: one root, optional levels of internal
// (filter) processes, and leaf processes. Two collective operations mirror
// MRNet's programming model:
//
//   - Reduce: every leaf produces a payload; each internal node combines
//     its children's payloads with a filter function; the root receives the
//     final value. Mr. Scan uses this for histogram aggregation in the
//     partitioner and for the progressive cluster merge (§3.3.2: "clusters
//     are progressively merged by each level of intermediate processes").
//   - Multicast: the root's payload is distributed down the tree, with an
//     optional per-node split, and delivered to every leaf. Mr. Scan uses
//     this to broadcast partition boundaries and, in the sweep phase, the
//     global cluster ID assignments.
//
// Every node runs concurrently (a goroutine per node per operation), so
// subtree work genuinely overlaps, as on a real MRNet instantiation.
// Communication and startup costs of the machine we do not have (Cray
// ALPS process launch, per-hop network latency) are charged to a simulated
// clock.
package mrnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/health"
	"repro/internal/integrity"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// DefaultFanout is the 256-way fanout the paper uses for intermediate
// processes ("each intermediate process has a 256-way fanout of child
// processes whenever possible", §5.1).
const DefaultFanout = 256

// CostModel describes the simulated communication costs.
type CostModel struct {
	// HopLatency is charged per payload per tree hop.
	HopLatency time.Duration
	// BytesPerSec is the per-link bandwidth (0 disables byte costs).
	BytesPerSec float64
	// StartupBase and StartupPerNode model tool startup: the paper
	// attributes a linear growth term to "linear behavior in Cray ALPS"
	// (§5.1.1); startup = StartupBase + StartupPerNode × processes.
	StartupBase    time.Duration
	StartupPerNode time.Duration
	// ReconnectLatency is charged per re-parented child when an internal
	// node fails and its children reconnect to their grandparent (the
	// MRNet recovery model).
	ReconnectLatency time.Duration
}

// TitanCosts returns the cost model used by the experiments, with a
// startup ramp tuned to show the paper's linear MRNet startup component.
func TitanCosts() CostModel {
	return CostModel{
		HopLatency:       20 * time.Microsecond,
		BytesPerSec:      5e9,
		StartupBase:      500 * time.Millisecond,
		StartupPerNode:   2 * time.Millisecond,
		ReconnectLatency: 50 * time.Millisecond,
	}
}

// Node is one process in the tree.
type Node struct {
	id       int
	level    int // 0 at the root, increasing downwards
	parent   *Node
	children []*Node
	// leafIndex is the dense index among leaves, -1 for internal nodes.
	leafIndex int
	// firstLeaf and numLeaves describe the contiguous leaf range of the
	// node's subtree (leaves are numbered in DFS order).
	firstLeaf int
	numLeaves int
	// failed marks an internal node removed by FailNode; its children
	// were re-parented to the grandparent.
	failed bool
}

// ID returns the node's network-wide identifier (0 is the root).
func (n *Node) ID() int { return n.id }

// Level returns the node's depth (root = 0).
func (n *Node) Level() int { return n.level }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// LeafIndex returns the dense leaf index, or -1 for internal nodes.
func (n *Node) LeafIndex() int { return n.leafIndex }

// Children returns the node's children (do not mutate).
func (n *Node) Children() []*Node { return n.children }

// LeafRange returns the half-open range [lo, hi) of leaf indices covered
// by the node's subtree. Leaves are numbered in DFS order, so every
// subtree covers a contiguous range — which lets multicast splits route
// per-leaf payloads by slicing.
func (n *Node) LeafRange() (lo, hi int) {
	return n.firstLeaf, n.firstLeaf + n.numLeaves
}

// Stats counts overlay traffic. It is a read-side view over the
// network's telemetry counters (see SetTelemetry) — the registry is
// the single source of truth; this struct exists for established
// callers.
type Stats struct {
	Packets int64
	Bytes   int64
}

// netMetrics caches the network's handles into a telemetry registry.
type netMetrics struct {
	packets    *telemetry.Counter
	bytes      *telemetry.Counter
	recoveries *telemetry.Counter
	filterSec  *telemetry.Histogram
	// Frame-integrity ledger: corrupted edge frames caught by the
	// modeled CRC32C trailer, and the retransmits that healed them.
	corruptHops *telemetry.Counter
	retransmits *telemetry.Counter
}

func resolveNetMetrics(h *telemetry.Hub, label string) netMetrics {
	return netMetrics{
		packets:     h.Counter("mrnet_packets_total", "net", label),
		bytes:       h.Counter("mrnet_bytes_total", "net", label),
		recoveries:  h.Counter("mrnet_recoveries_total", "net", label),
		filterSec:   h.Histogram("mrnet_filter_seconds", telemetry.DefSecondsBuckets(), "net", label),
		corruptHops: h.Counter(integrity.MetricDetected, "site", string(faultinject.MRNetHop)),
		retransmits: h.Counter("mrnet_retransmits_total", "net", label),
	}
}

// Network is an instantiated process tree.
type Network struct {
	root   *Node
	nodes  []*Node
	leaves []*Node
	costs  CostModel
	clock  *simclock.Clock

	// topoMu guards tree mutations (FailNode re-parenting) and the
	// telemetry installation below.
	topoMu sync.Mutex
	plan   *faultinject.Plan
	hub    *telemetry.Hub
	parent *telemetry.Span
	m      netMetrics
	// label distinguishes this network's metrics ("net" label) from
	// other trees sharing one hub, e.g. the partitioner's tree vs the
	// cluster tree in one pipeline run.
	label string
	// spans gates per-hop/per-filter span recording: off on the private
	// default hub, on once a run-level hub is installed via SetTelemetry.
	spans bool
	// linkHealth scores each tree edge (keyed by its child endpoint's
	// NIC) so a flapping or frame-corrupting link re-parents the child
	// before the link hard-fails a collective. Nil disables scoring.
	linkHealth *health.Tracker
	// budget meters retransmits; nil grants every retransmit.
	budget *health.Budget
}

// New builds a balanced tree with the given number of leaves and maximum
// fanout, matching the paper's topology policy: no intermediate processes
// while the root can hold every leaf (≤ fanout), otherwise ⌈leaves/fanout⌉
// intermediate processes per level, at most three levels for the scales
// evaluated. A nil clock allocates a private one.
func New(leaves, fanout int, costs CostModel, clock *simclock.Clock) (*Network, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("mrnet: need at least one leaf, got %d", leaves)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("mrnet: fanout must be at least 2, got %d", fanout)
	}
	if clock == nil {
		clock = simclock.New()
	}
	net := &Network{costs: costs, clock: clock, label: "net"}
	net.hub = telemetry.New(clock)
	net.m = resolveNetMetrics(net.hub, net.label)
	net.root = &Node{id: 0, level: 0, leafIndex: -1}
	net.nodes = append(net.nodes, net.root)
	net.build(net.root, leaves, fanout)
	net.clock.Charge("mrnet/startup",
		costs.StartupBase+time.Duration(len(net.nodes))*costs.StartupPerNode)
	return net, nil
}

// build attaches the subtree holding `leaves` leaf processes under parent.
func (net *Network) build(parent *Node, leaves, fanout int) {
	parent.firstLeaf = len(net.leaves)
	parent.numLeaves = leaves
	if leaves <= fanout {
		for i := 0; i < leaves; i++ {
			leaf := &Node{
				id:        len(net.nodes),
				level:     parent.level + 1,
				parent:    parent,
				leafIndex: len(net.leaves),
				firstLeaf: len(net.leaves),
				numLeaves: 1,
			}
			parent.children = append(parent.children, leaf)
			net.nodes = append(net.nodes, leaf)
			net.leaves = append(net.leaves, leaf)
		}
		return
	}
	groups := (leaves + fanout - 1) / fanout
	if groups > fanout {
		groups = fanout // deeper recursion will absorb the rest
	}
	remaining := leaves
	for g := 0; g < groups; g++ {
		// Spread leaves as evenly as possible over the groups.
		share := (remaining + (groups - g) - 1) / (groups - g)
		internal := &Node{
			id:        len(net.nodes),
			level:     parent.level + 1,
			parent:    parent,
			leafIndex: -1,
		}
		parent.children = append(parent.children, internal)
		net.nodes = append(net.nodes, internal)
		net.build(internal, share, fanout)
		remaining -= share
	}
}

// Root returns the root node.
func (net *Network) Root() *Node { return net.root }

// NumLeaves returns the number of leaf processes.
func (net *Network) NumLeaves() int { return len(net.leaves) }

// NumInternal returns the number of intermediate (non-root, non-leaf)
// processes — the quantity in Table 1's second column.
func (net *Network) NumInternal() int {
	return len(net.nodes) - len(net.leaves) - 1
}

// NumNodes returns the total number of processes including the root.
func (net *Network) NumNodes() int { return len(net.nodes) }

// Depth returns the number of levels (root-only tree has depth 1).
func (net *Network) Depth() int {
	max := 0
	for _, l := range net.leaves {
		if l.level > max {
			max = l.level
		}
	}
	return max + 1
}

// Clock returns the simulated clock.
func (net *Network) Clock() *simclock.Clock { return net.clock }

// SetTelemetry points the network's metrics and spans at a run-level
// hub, carrying over counts accumulated on the private default hub.
// Per-hop and per-filter spans are recorded only on an installed hub.
// name becomes the "net" metric label distinguishing this tree from
// others on the same hub (empty keeps the current label) — two trees
// installed under one hub with the same label would share counters.
func (net *Network) SetTelemetry(h *telemetry.Hub, name string) {
	if h == nil {
		return
	}
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if name != "" {
		net.label = name
	}
	old := net.m
	net.hub = h
	net.m = resolveNetMetrics(h, net.label)
	net.spans = true
	net.m.packets.Add(old.packets.Value())
	net.m.bytes.Add(old.bytes.Value())
	net.m.recoveries.Add(old.recoveries.Value())
	net.m.corruptHops.Add(old.corruptHops.Value())
	net.m.retransmits.Add(old.retransmits.Value())
	net.linkHealth.SetTelemetry(h)
	net.budget.SetTelemetry(h)
}

// SetHealth installs a link-health tracker: every frame crossing a tree
// edge is scored against the NIC of the edge's child endpoint (component
// "nic.<id>", class "nic"). When the tracker quarantines an internal
// node's NIC, the next frame over that edge is converted into a
// NodeFailedError and the collective re-parents the node's children via
// the ordinary FailNode recovery path — a preemptive re-parent, before
// the link degrades into a hard frame loss. Leaf NICs cannot be
// re-parented (leaves hold partition data); a quarantined leaf link
// keeps transmitting and simply keeps paying retransmits. The tracker
// inherits the network's telemetry hub.
func (net *Network) SetHealth(t *health.Tracker) {
	net.topoMu.Lock()
	net.linkHealth = t
	t.SetTelemetry(net.hub)
	net.topoMu.Unlock()
}

// SetRetryBudget meters frame retransmits (site "mrnet.retransmit")
// against a shared token bucket; exhaustion turns the next retransmit
// into a loud failure instead of silent retry churn. Nil removes the cap.
func (net *Network) SetRetryBudget(b *health.Budget) {
	net.topoMu.Lock()
	net.budget = b
	b.SetTelemetry(net.hub)
	net.topoMu.Unlock()
}

// healthState snapshots the link tracker and retry budget.
func (net *Network) healthState() (*health.Tracker, *health.Budget) {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	return net.linkHealth, net.budget
}

// NICFaultSite returns the per-link fault site for the tree edge whose
// child endpoint is node id. Rules armed here (error, flap, corrupt,
// delay) afflict only that edge, unlike the shared mrnet.hop site which
// fires across the whole tree.
func NICFaultSite(id int) faultinject.Site {
	return faultinject.Site(fmt.Sprintf("mrnet.nic.%d", id))
}

// nicComponent names the health component for node id's uplink NIC.
func nicComponent(id int) string { return fmt.Sprintf("nic.%d", id) }

// SetTraceParent nests the network's hop/filter spans under s — the
// span of the phase currently using the tree. Pass nil to detach.
func (net *Network) SetTraceParent(s *telemetry.Span) {
	net.topoMu.Lock()
	net.parent = s
	net.topoMu.Unlock()
}

// telemetry snapshots the hub, span parent and metric handles.
func (net *Network) telemetry() (*telemetry.Hub, *telemetry.Span, netMetrics, bool) {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	return net.hub, net.parent, net.m, net.spans
}

// Stats returns overlay traffic counters, read back from the telemetry
// registry.
func (net *Network) Stats() Stats {
	net.topoMu.Lock()
	m := net.m
	net.topoMu.Unlock()
	return Stats{Packets: m.packets.Value(), Bytes: m.bytes.Value()}
}

// chargeHop records one payload crossing one tree edge.
func (net *Network) chargeHop(level int, bytes int64) {
	hub, parent, m, spans := net.telemetry()
	cost := net.costs.HopLatency + simclock.BytesDuration(bytes, net.costs.BytesPerSec)
	if spans {
		hub.RecordSim(parent, "mrnet.hop", cost,
			telemetry.Int("level", level), telemetry.Int64("bytes", bytes))
	}
	m.packets.Inc()
	m.bytes.Add(bytes)
	net.clock.Charge(fmt.Sprintf("mrnet/level%d", level), cost)
}

// maxHopRetransmits bounds CRC-triggered retransmits of one frame on
// one edge before the edge is declared bad and the collective fails
// (to be retried a level up or by the phase retry policy).
const maxHopRetransmits = 3

// ErrHopCorrupt reports a tree edge that kept corrupting a frame past
// the retransmit cap.
var ErrHopCorrupt = errors.New("mrnet: frame corrupt after retransmits")

// ErrFrameLost reports a tree edge that kept dropping a frame (link
// error or flap) past the retransmit cap.
var ErrFrameLost = errors.New("mrnet: frame lost after retransmits")

// ErrNICQuarantined is the cause carried by the NodeFailedError that a
// quarantined link raises to trigger preemptive re-parenting.
var ErrNICQuarantined = errors.New("mrnet: link quarantined by health tracker")

// quarantinedLink converts a quarantined child NIC into the failure of
// the child itself, steering the collective into the existing FailNode
// re-parenting machinery before the link hard-fails a frame. Leaf links
// return nil: leaves hold partition data and cannot be re-parented away.
func quarantinedLink(tracker *health.Tracker, c *Node) error {
	if tracker == nil || c.IsLeaf() || !tracker.Quarantined(nicComponent(c.id)) {
		return nil
	}
	return &NodeFailedError{ID: c.id, cause: ErrNICQuarantined}
}

// transmitHop models one checksummed frame crossing the tree edge whose
// child endpoint is c (frames travel child->parent in Reduce and
// parent->child in Multicast; either way the edge is named by c's NIC).
//
// Two fault sites afflict the frame: the shared mrnet.hop site and the
// per-link NICFaultSite(c.id). A corrupt rule means the frame's bits
// flipped on the wire, the CRC32C trailer catches it at the receiver,
// and the frame is retransmitted — charging the edge again. An error or
// flap rule at the NIC site means the frame was dropped outright and is
// likewise retransmitted. In-process payloads move by reference, so the
// flip itself is not destructive; what is real is the detection
// accounting, the retransmit cost, and the health evidence: every
// outcome feeds the link tracker, and a quarantined internal NIC turns
// into a NodeFailedError so the child re-parents preemptively. Each
// retransmit beyond the first transmission spends a retry-budget token;
// denial fails the frame loudly.
func (net *Network) transmitHop(c *Node, bytes int64) error {
	plan := net.faultPlan()
	tracker, budget := net.healthState()
	site := NICFaultSite(c.id)
	comp := nicComponent(c.id)
	cost := net.costs.HopLatency + simclock.BytesDuration(bytes, net.costs.BytesPerSec)
	for attempt := 0; ; attempt++ {
		if ferr := plan.Check(site); ferr != nil {
			if faultinject.IsFatal(ferr) {
				return fmt.Errorf("mrnet: link to node %d: %w", c.id, ferr)
			}
			// The frame crossed the wire and was lost: the edge is
			// still charged, the sender times out and retransmits.
			net.chargeHop(c.level, bytes)
			hub, parent, m, _ := net.telemetry()
			m.retransmits.Inc()
			hub.Event(parent, "mrnet.frame_lost",
				telemetry.Int("node", c.id),
				telemetry.Int("level", c.level),
				telemetry.Bool("healed", attempt+1 < maxHopRetransmits))
			tracker.ObserveError(comp)
			if nf := quarantinedLink(tracker, c); nf != nil {
				return nf
			}
			if attempt+1 >= maxHopRetransmits {
				return fmt.Errorf("mrnet: link to node %d: %w", c.id, ErrFrameLost)
			}
			if !budget.Take("mrnet.retransmit") {
				return fmt.Errorf("mrnet: link to node %d retransmit denied: %w", c.id, health.ErrBudgetExhausted)
			}
			continue
		}
		corr := plan.CorruptCheck(faultinject.MRNetHop, bytes)
		detSite := faultinject.MRNetHop
		if corr == nil {
			corr = plan.CorruptCheck(site, bytes)
			detSite = site
		}
		net.chargeHop(c.level, bytes)
		if corr == nil {
			tracker.ObserveSuccess(comp, cost)
			return quarantinedLink(tracker, c)
		}
		hub, parent, m, _ := net.telemetry()
		if detSite == faultinject.MRNetHop {
			m.corruptHops.Inc()
		} else {
			// NIC-localized corruption keeps its own detection label so
			// the integrity ledger balances per site.
			hub.Counter(integrity.MetricDetected, "site", string(detSite)).Inc()
		}
		m.retransmits.Inc()
		hub.Event(parent, "integrity.corruption.detected",
			telemetry.String("site", string(detSite)),
			telemetry.Int("node", c.id),
			telemetry.Int("level", c.level),
			telemetry.Int64("offset", corr.Offset),
			telemetry.Bool("healed", attempt+1 < maxHopRetransmits))
		tracker.ObserveCorruption(comp)
		if nf := quarantinedLink(tracker, c); nf != nil {
			return nf
		}
		if attempt+1 >= maxHopRetransmits {
			return fmt.Errorf("mrnet: link to node %d: %w", c.id, ErrHopCorrupt)
		}
		if !budget.Take("mrnet.retransmit") {
			return fmt.Errorf("mrnet: link to node %d retransmit denied: %w", c.id, health.ErrBudgetExhausted)
		}
	}
}

// SetFaultPlan installs the fault plan consulted at the mrnet.hop site
// (per tree-edge transfer, error rules and corrupt rules) and the
// mrnet.node site (internal process crash, recovered by re-parenting).
// Set it before starting collectives; a nil plan disables injection.
func (net *Network) SetFaultPlan(p *faultinject.Plan) {
	net.topoMu.Lock()
	net.plan = p
	net.topoMu.Unlock()
}

// Recoveries returns how many internal-node failures the network has
// recovered from (via FailNode re-parenting).
func (net *Network) Recoveries() int64 {
	net.topoMu.Lock()
	m := net.m
	net.topoMu.Unlock()
	return m.recoveries.Value()
}

// NodeFailedError reports the simulated crash of an internal process.
// Collectives catch it one level up, re-parent the failed node's
// children to their grandparent, and retry the affected subtree.
type NodeFailedError struct {
	ID    int
	cause error
}

func (e *NodeFailedError) Error() string {
	return fmt.Sprintf("mrnet: internal node %d failed: %v", e.ID, e.cause)
}

func (e *NodeFailedError) Unwrap() error { return e.cause }

// FailNode removes an internal (non-root, non-leaf) process from the
// tree, re-parenting its children to their grandparent — the MRNet
// failure recovery model. Leaves are numbered in DFS order and the
// splice preserves child order, so every surviving subtree keeps its
// leaf range; only depths shrink. Each re-parented child is charged
// ReconnectLatency on the simulated clock. Failing an already-failed
// node is a no-op (concurrent collectives may race to recover the same
// crash).
func (net *Network) FailNode(id int) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if id < 0 || id >= len(net.nodes) {
		return fmt.Errorf("mrnet: no node %d", id)
	}
	n := net.nodes[id]
	if n.failed {
		return nil
	}
	if n.parent == nil {
		return fmt.Errorf("mrnet: cannot fail the root (the front-end is not recoverable)")
	}
	if n.IsLeaf() {
		return fmt.Errorf("mrnet: cannot fail leaf node %d (leaves hold partition data)", id)
	}
	p := n.parent
	idx := -1
	for i, c := range p.children {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("mrnet: node %d not among its parent's children", id)
	}
	spliced := make([]*Node, 0, len(p.children)-1+len(n.children))
	spliced = append(spliced, p.children[:idx]...)
	spliced = append(spliced, n.children...)
	spliced = append(spliced, p.children[idx+1:]...)
	p.children = spliced
	var promote func(*Node)
	promote = func(m *Node) {
		m.level--
		for _, c := range m.children {
			promote(c)
		}
	}
	for _, c := range n.children {
		c.parent = p
		promote(c)
	}
	net.clock.Charge("mrnet/reconnect",
		time.Duration(len(n.children))*net.costs.ReconnectLatency)
	reparented := len(n.children)
	n.failed = true
	n.parent = nil
	n.children = nil
	// topoMu is held: use the handles directly rather than telemetry().
	net.m.recoveries.Inc()
	net.hub.Event(net.parent, "mrnet.node_failed",
		telemetry.Int("node", id), telemetry.Int("reparented", reparented))
	return nil
}

// childrenOf snapshots a node's child list under the topology lock.
func (net *Network) childrenOf(n *Node) []*Node {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	return append([]*Node(nil), n.children...)
}

func (net *Network) faultPlan() *faultinject.Plan {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	return net.plan
}

// opState is the shared state of one collective operation: the first
// fatal error — or the caller's context expiring — cancels the whole
// operation so sibling subtrees stop charging the simulated clock for
// work that would not happen on the real tree.
type opState struct {
	ctx       context.Context
	cancelled atomic.Bool
	mu        sync.Mutex
	err       error
}

func (o *opState) fail(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
	o.cancelled.Store(true)
}

func (o *opState) aborted() bool {
	return o.cancelled.Load() || o.ctx.Err() != nil
}

func (o *opState) firstErr() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// errAborted marks subtrees cut short by a fatal error elsewhere in the
// collective; the originating error is reported instead.
var errAborted = errors.New("mrnet: collective aborted by failure elsewhere in the tree")

// finish maps a collective's outcome to the user-visible error. A
// cancelled or deadline-expired context takes precedence over the
// internal abort sentinel so callers can errors.Is-match it.
func (o *opState) finish(err error) error {
	if err == nil {
		return nil
	}
	if first := o.firstErr(); first != nil {
		return first
	}
	if cerr := o.ctx.Err(); cerr != nil {
		return fmt.Errorf("mrnet: collective aborted: %w", cerr)
	}
	return err
}

// Sizer reports the wire size of a payload for the cost model. A nil
// Sizer charges only per-hop latency.
type Sizer[T any] func(T) int64

// Reduce performs an upstream reduction: leafFn runs at every leaf (in
// parallel), combine runs at every internal node and at the root over its
// children's results, ordered by child position. The root's combined value
// is returned.
//
// The first fatal error cancels the whole collective (unstarted subtree
// work is skipped and charges nothing). An injected internal-node crash
// (mrnet.node fault site) is not fatal: the failed node's children are
// re-parented to their grandparent and the affected subtree is
// re-reduced, with already-transferred sibling results reused — leafFn
// and combine must therefore be safe to re-execute (DBSCAN's phases are
// deterministic and side-effect-free, so they are). A faultinject fatal
// fault is never recovered: it aborts the collective like a caller
// cancellation.
//
// ctx cancellation (or deadline expiry) aborts the collective at the
// next hop boundary: in-flight leaf work finishes, but no further
// payloads travel and the returned error wraps ctx.Err().
func Reduce[T any](ctx context.Context, net *Network, leafFn func(leaf int) (T, error), combine func(n *Node, in []T) (T, error), size Sizer[T]) (T, error) {
	op := &opState{ctx: ctx}
	v, err := reduceAt(net, net.root, leafFn, combine, size, op)
	if err != nil {
		var zero T
		return zero, op.finish(err)
	}
	return v, nil
}

func reduceAt[T any](net *Network, n *Node, leafFn func(int) (T, error), combine func(*Node, []T) (T, error), size Sizer[T], op *opState) (T, error) {
	var zero T
	if op.aborted() {
		return zero, errAborted
	}
	if n.IsLeaf() {
		v, err := leafFn(n.leafIndex)
		if err != nil {
			err = fmt.Errorf("mrnet: leaf %d: %w", n.leafIndex, err)
			op.fail(err)
			return zero, err
		}
		return v, nil
	}
	if n.parent != nil { // internal, non-root: subject to crash injection
		if ferr := net.faultPlan().Check(faultinject.MRNetNode); ferr != nil {
			if faultinject.IsFatal(ferr) {
				err := fmt.Errorf("mrnet: node %d: %w", n.id, ferr)
				op.fail(err)
				return zero, err
			}
			return zero, &NodeFailedError{ID: n.id, cause: ferr}
		}
	}
	// done caches child results already transferred to this node; on a
	// child crash only the re-parented (and not-yet-reduced) subtrees
	// re-execute.
	done := make(map[*Node]T)
	var doneMu sync.Mutex
	for {
		children := net.childrenOf(n)
		results := make([]T, len(children))
		errs := make([]error, len(children))
		var wg sync.WaitGroup
		for i, c := range children {
			doneMu.Lock()
			v, ok := done[c]
			doneMu.Unlock()
			if ok {
				results[i] = v
				continue
			}
			wg.Add(1)
			go func(i int, c *Node) {
				defer wg.Done()
				v, err := reduceAt(net, c, leafFn, combine, size, op)
				if err != nil {
					errs[i] = err
					return
				}
				if op.aborted() {
					errs[i] = errAborted
					return
				}
				if ferr := net.faultPlan().Check(faultinject.MRNetHop); ferr != nil {
					err = fmt.Errorf("mrnet: hop from node %d to node %d: %w", c.id, n.id, ferr)
					op.fail(err)
					errs[i] = err
					return
				}
				var b int64
				if size != nil {
					b = size(v)
				}
				if ferr := net.transmitHop(c, b); ferr != nil {
					var nf *NodeFailedError
					if errors.As(ferr, &nf) {
						errs[i] = ferr // preemptive re-parent, not fatal
						return
					}
					err = fmt.Errorf("mrnet: hop from node %d to node %d: %w", c.id, n.id, ferr)
					op.fail(err)
					errs[i] = err
					return
				}
				results[i] = v
				doneMu.Lock()
				done[c] = v
				doneMu.Unlock()
			}(i, c)
		}
		wg.Wait()
		var crashed []int
		for _, err := range errs {
			var nf *NodeFailedError
			if errors.As(err, &nf) {
				crashed = append(crashed, nf.ID)
			} else if err != nil && !errors.Is(err, errAborted) {
				return zero, err
			}
		}
		if op.aborted() {
			return zero, errAborted
		}
		if len(crashed) == 0 {
			hub, parent, m, spans := net.telemetry()
			var sp *telemetry.Span
			if spans {
				sp = hub.Start(parent, "mrnet.filter", telemetry.Int("node", n.id))
			}
			fstart := time.Now()
			v, err := combine(n, results)
			m.filterSec.Observe(time.Since(fstart).Seconds())
			sp.End()
			if err != nil {
				err = fmt.Errorf("mrnet: filter at node %d: %w", n.id, err)
				op.fail(err)
				return zero, err
			}
			return v, nil
		}
		for _, id := range crashed {
			if err := net.FailNode(id); err != nil {
				op.fail(err)
				return zero, err
			}
		}
		// Retry with the re-parented child list; finite internal nodes
		// bound the number of recovery rounds.
	}
}

// Multicast distributes a payload from the root to every leaf. split, if
// non-nil, runs at every non-leaf node and must return one payload per
// child (it may slice the payload to route data); a nil split broadcasts
// the same value. deliver runs at every leaf, in parallel.
//
// Failure semantics match Reduce: fatal errors and ctx cancellation
// abort the collective at the next hop boundary, injected internal-node
// crashes re-parent and retry the affected subtree (split is re-invoked
// over the new child list, deliver may re-run at leaves under a crashed
// node — both must be idempotent).
func Multicast[T any](ctx context.Context, net *Network, payload T, split func(n *Node, in T) ([]T, error), deliver func(leaf int, v T) error, size Sizer[T]) error {
	op := &opState{ctx: ctx}
	return op.finish(multicastAt(net, net.root, payload, split, deliver, size, op))
}

func multicastAt[T any](net *Network, n *Node, payload T, split func(*Node, T) ([]T, error), deliver func(int, T) error, size Sizer[T], op *opState) error {
	if op.aborted() {
		return errAborted
	}
	if n.IsLeaf() {
		if err := deliver(n.leafIndex, payload); err != nil {
			err = fmt.Errorf("mrnet: leaf %d: %w", n.leafIndex, err)
			op.fail(err)
			return err
		}
		return nil
	}
	if n.parent != nil { // internal, non-root: subject to crash injection
		if ferr := net.faultPlan().Check(faultinject.MRNetNode); ferr != nil {
			if faultinject.IsFatal(ferr) {
				err := fmt.Errorf("mrnet: node %d: %w", n.id, ferr)
				op.fail(err)
				return err
			}
			return &NodeFailedError{ID: n.id, cause: ferr}
		}
	}
	delivered := make(map[*Node]bool)
	var deliveredMu sync.Mutex
	for {
		children := net.childrenOf(n)
		parts := make([]T, len(children))
		if split != nil {
			out, err := split(n, payload)
			if err != nil {
				err = fmt.Errorf("mrnet: split at node %d: %w", n.id, err)
				op.fail(err)
				return err
			}
			if len(out) != len(children) {
				err = fmt.Errorf("mrnet: split at node %d returned %d payloads for %d children",
					n.id, len(out), len(children))
				op.fail(err)
				return err
			}
			copy(parts, out)
		} else {
			for i := range parts {
				parts[i] = payload
			}
		}
		errs := make([]error, len(children))
		var wg sync.WaitGroup
		for i, c := range children {
			deliveredMu.Lock()
			skip := delivered[c]
			deliveredMu.Unlock()
			if skip {
				continue
			}
			wg.Add(1)
			go func(i int, c *Node) {
				defer wg.Done()
				if op.aborted() {
					errs[i] = errAborted
					return
				}
				if ferr := net.faultPlan().Check(faultinject.MRNetHop); ferr != nil {
					err := fmt.Errorf("mrnet: hop from node %d to node %d: %w", n.id, c.id, ferr)
					op.fail(err)
					errs[i] = err
					return
				}
				var b int64
				if size != nil {
					b = size(parts[i])
				}
				if ferr := net.transmitHop(c, b); ferr != nil {
					var nf *NodeFailedError
					if errors.As(ferr, &nf) {
						errs[i] = ferr // preemptive re-parent, not fatal
						return
					}
					err := fmt.Errorf("mrnet: hop from node %d to node %d: %w", n.id, c.id, ferr)
					op.fail(err)
					errs[i] = err
					return
				}
				if err := multicastAt(net, c, parts[i], split, deliver, size, op); err != nil {
					errs[i] = err
					return
				}
				deliveredMu.Lock()
				delivered[c] = true
				deliveredMu.Unlock()
			}(i, c)
		}
		wg.Wait()
		var crashed []int
		for _, err := range errs {
			var nf *NodeFailedError
			if errors.As(err, &nf) {
				crashed = append(crashed, nf.ID)
			} else if err != nil && !errors.Is(err, errAborted) {
				return err
			}
		}
		if op.aborted() {
			return errAborted
		}
		if len(crashed) == 0 {
			return nil
		}
		for _, id := range crashed {
			if err := net.FailNode(id); err != nil {
				op.fail(err)
				return err
			}
		}
	}
}

// LeafRun executes fn at every leaf in parallel and collects the results
// by leaf index. It models the per-leaf compute stage of a phase (e.g.
// the cluster phase running GPGPU DBSCAN on every leaf). Cancelling ctx
// prevents leaves that have not started from running; leaves already
// executing finish (per-leaf compute is not interruptible, exactly like
// a kernel already launched on a device), and the ctx error is reported.
func LeafRun[T any](ctx context.Context, net *Network, fn func(leaf int) (T, error)) ([]T, error) {
	results := make([]T, len(net.leaves))
	errs := make([]error, len(net.leaves))
	var wg sync.WaitGroup
	wg.Add(len(net.leaves))
	for i := range net.leaves {
		go func(i int) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mrnet: leaf run aborted: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mrnet: leaf %d: %w", i, err)
		}
	}
	return results, nil
}
