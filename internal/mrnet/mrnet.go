// Package mrnet implements a tree-based multicast/reduction overlay
// network in the style of MRNet (Roth, Arnold & Miller, SC'03), the
// process-tree substrate Mr. Scan runs on.
//
// A Network is a tree of Nodes: one root, optional levels of internal
// (filter) processes, and leaf processes. Two collective operations mirror
// MRNet's programming model:
//
//   - Reduce: every leaf produces a payload; each internal node combines
//     its children's payloads with a filter function; the root receives the
//     final value. Mr. Scan uses this for histogram aggregation in the
//     partitioner and for the progressive cluster merge (§3.3.2: "clusters
//     are progressively merged by each level of intermediate processes").
//   - Multicast: the root's payload is distributed down the tree, with an
//     optional per-node split, and delivered to every leaf. Mr. Scan uses
//     this to broadcast partition boundaries and, in the sweep phase, the
//     global cluster ID assignments.
//
// Every node runs concurrently (a goroutine per node per operation), so
// subtree work genuinely overlaps, as on a real MRNet instantiation.
// Communication and startup costs of the machine we do not have (Cray
// ALPS process launch, per-hop network latency) are charged to a simulated
// clock.
package mrnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// DefaultFanout is the 256-way fanout the paper uses for intermediate
// processes ("each intermediate process has a 256-way fanout of child
// processes whenever possible", §5.1).
const DefaultFanout = 256

// CostModel describes the simulated communication costs.
type CostModel struct {
	// HopLatency is charged per payload per tree hop.
	HopLatency time.Duration
	// BytesPerSec is the per-link bandwidth (0 disables byte costs).
	BytesPerSec float64
	// StartupBase and StartupPerNode model tool startup: the paper
	// attributes a linear growth term to "linear behavior in Cray ALPS"
	// (§5.1.1); startup = StartupBase + StartupPerNode × processes.
	StartupBase    time.Duration
	StartupPerNode time.Duration
}

// TitanCosts returns the cost model used by the experiments, with a
// startup ramp tuned to show the paper's linear MRNet startup component.
func TitanCosts() CostModel {
	return CostModel{
		HopLatency:     20 * time.Microsecond,
		BytesPerSec:    5e9,
		StartupBase:    500 * time.Millisecond,
		StartupPerNode: 2 * time.Millisecond,
	}
}

// Node is one process in the tree.
type Node struct {
	id       int
	level    int // 0 at the root, increasing downwards
	parent   *Node
	children []*Node
	// leafIndex is the dense index among leaves, -1 for internal nodes.
	leafIndex int
	// firstLeaf and numLeaves describe the contiguous leaf range of the
	// node's subtree (leaves are numbered in DFS order).
	firstLeaf int
	numLeaves int
}

// ID returns the node's network-wide identifier (0 is the root).
func (n *Node) ID() int { return n.id }

// Level returns the node's depth (root = 0).
func (n *Node) Level() int { return n.level }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// LeafIndex returns the dense leaf index, or -1 for internal nodes.
func (n *Node) LeafIndex() int { return n.leafIndex }

// Children returns the node's children (do not mutate).
func (n *Node) Children() []*Node { return n.children }

// LeafRange returns the half-open range [lo, hi) of leaf indices covered
// by the node's subtree. Leaves are numbered in DFS order, so every
// subtree covers a contiguous range — which lets multicast splits route
// per-leaf payloads by slicing.
func (n *Node) LeafRange() (lo, hi int) {
	return n.firstLeaf, n.firstLeaf + n.numLeaves
}

// Stats counts overlay traffic.
type Stats struct {
	Packets int64
	Bytes   int64
}

// Network is an instantiated process tree.
type Network struct {
	root   *Node
	nodes  []*Node
	leaves []*Node
	costs  CostModel
	clock  *simclock.Clock

	packets atomic.Int64
	bytes   atomic.Int64
}

// New builds a balanced tree with the given number of leaves and maximum
// fanout, matching the paper's topology policy: no intermediate processes
// while the root can hold every leaf (≤ fanout), otherwise ⌈leaves/fanout⌉
// intermediate processes per level, at most three levels for the scales
// evaluated. A nil clock allocates a private one.
func New(leaves, fanout int, costs CostModel, clock *simclock.Clock) (*Network, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("mrnet: need at least one leaf, got %d", leaves)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("mrnet: fanout must be at least 2, got %d", fanout)
	}
	if clock == nil {
		clock = simclock.New()
	}
	net := &Network{costs: costs, clock: clock}
	net.root = &Node{id: 0, level: 0, leafIndex: -1}
	net.nodes = append(net.nodes, net.root)
	net.build(net.root, leaves, fanout)
	net.clock.Charge("mrnet/startup",
		costs.StartupBase+time.Duration(len(net.nodes))*costs.StartupPerNode)
	return net, nil
}

// build attaches the subtree holding `leaves` leaf processes under parent.
func (net *Network) build(parent *Node, leaves, fanout int) {
	parent.firstLeaf = len(net.leaves)
	parent.numLeaves = leaves
	if leaves <= fanout {
		for i := 0; i < leaves; i++ {
			leaf := &Node{
				id:        len(net.nodes),
				level:     parent.level + 1,
				parent:    parent,
				leafIndex: len(net.leaves),
				firstLeaf: len(net.leaves),
				numLeaves: 1,
			}
			parent.children = append(parent.children, leaf)
			net.nodes = append(net.nodes, leaf)
			net.leaves = append(net.leaves, leaf)
		}
		return
	}
	groups := (leaves + fanout - 1) / fanout
	if groups > fanout {
		groups = fanout // deeper recursion will absorb the rest
	}
	remaining := leaves
	for g := 0; g < groups; g++ {
		// Spread leaves as evenly as possible over the groups.
		share := (remaining + (groups - g) - 1) / (groups - g)
		internal := &Node{
			id:        len(net.nodes),
			level:     parent.level + 1,
			parent:    parent,
			leafIndex: -1,
		}
		parent.children = append(parent.children, internal)
		net.nodes = append(net.nodes, internal)
		net.build(internal, share, fanout)
		remaining -= share
	}
}

// Root returns the root node.
func (net *Network) Root() *Node { return net.root }

// NumLeaves returns the number of leaf processes.
func (net *Network) NumLeaves() int { return len(net.leaves) }

// NumInternal returns the number of intermediate (non-root, non-leaf)
// processes — the quantity in Table 1's second column.
func (net *Network) NumInternal() int {
	return len(net.nodes) - len(net.leaves) - 1
}

// NumNodes returns the total number of processes including the root.
func (net *Network) NumNodes() int { return len(net.nodes) }

// Depth returns the number of levels (root-only tree has depth 1).
func (net *Network) Depth() int {
	max := 0
	for _, l := range net.leaves {
		if l.level > max {
			max = l.level
		}
	}
	return max + 1
}

// Clock returns the simulated clock.
func (net *Network) Clock() *simclock.Clock { return net.clock }

// Stats returns overlay traffic counters.
func (net *Network) Stats() Stats {
	return Stats{Packets: net.packets.Load(), Bytes: net.bytes.Load()}
}

// chargeHop records one payload crossing one tree edge.
func (net *Network) chargeHop(level int, bytes int64) {
	net.packets.Add(1)
	net.bytes.Add(bytes)
	cost := net.costs.HopLatency + simclock.BytesDuration(bytes, net.costs.BytesPerSec)
	net.clock.Charge(fmt.Sprintf("mrnet/level%d", level), cost)
}

// Sizer reports the wire size of a payload for the cost model. A nil
// Sizer charges only per-hop latency.
type Sizer[T any] func(T) int64

// Reduce performs an upstream reduction: leafFn runs at every leaf (in
// parallel), combine runs at every internal node and at the root over its
// children's results, ordered by child position. The root's combined value
// is returned. The first error aborts the reduction.
func Reduce[T any](net *Network, leafFn func(leaf int) (T, error), combine func(n *Node, in []T) (T, error), size Sizer[T]) (T, error) {
	return reduceAt(net, net.root, leafFn, combine, size)
}

func reduceAt[T any](net *Network, n *Node, leafFn func(int) (T, error), combine func(*Node, []T) (T, error), size Sizer[T]) (T, error) {
	var zero T
	if n.IsLeaf() {
		v, err := leafFn(n.leafIndex)
		if err != nil {
			return zero, fmt.Errorf("mrnet: leaf %d: %w", n.leafIndex, err)
		}
		return v, nil
	}
	results := make([]T, len(n.children))
	errs := make([]error, len(n.children))
	var wg sync.WaitGroup
	wg.Add(len(n.children))
	for i, c := range n.children {
		go func(i int, c *Node) {
			defer wg.Done()
			v, err := reduceAt(net, c, leafFn, combine, size)
			if err != nil {
				errs[i] = err
				return
			}
			var b int64
			if size != nil {
				b = size(v)
			}
			net.chargeHop(c.level, b)
			results[i] = v
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return zero, err
		}
	}
	v, err := combine(n, results)
	if err != nil {
		return zero, fmt.Errorf("mrnet: filter at node %d: %w", n.id, err)
	}
	return v, nil
}

// Multicast distributes a payload from the root to every leaf. split, if
// non-nil, runs at every non-leaf node and must return one payload per
// child (it may slice the payload to route data); a nil split broadcasts
// the same value. deliver runs at every leaf, in parallel.
func Multicast[T any](net *Network, payload T, split func(n *Node, in T) ([]T, error), deliver func(leaf int, v T) error, size Sizer[T]) error {
	return multicastAt(net, net.root, payload, split, deliver, size)
}

func multicastAt[T any](net *Network, n *Node, payload T, split func(*Node, T) ([]T, error), deliver func(int, T) error, size Sizer[T]) error {
	if n.IsLeaf() {
		if err := deliver(n.leafIndex, payload); err != nil {
			return fmt.Errorf("mrnet: leaf %d: %w", n.leafIndex, err)
		}
		return nil
	}
	parts := make([]T, len(n.children))
	if split != nil {
		out, err := split(n, payload)
		if err != nil {
			return fmt.Errorf("mrnet: split at node %d: %w", n.id, err)
		}
		if len(out) != len(n.children) {
			return fmt.Errorf("mrnet: split at node %d returned %d payloads for %d children",
				n.id, len(out), len(n.children))
		}
		copy(parts, out)
	} else {
		for i := range parts {
			parts[i] = payload
		}
	}
	errs := make([]error, len(n.children))
	var wg sync.WaitGroup
	wg.Add(len(n.children))
	for i, c := range n.children {
		go func(i int, c *Node) {
			defer wg.Done()
			var b int64
			if size != nil {
				b = size(parts[i])
			}
			net.chargeHop(c.level, b)
			errs[i] = multicastAt(net, c, parts[i], split, deliver, size)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// LeafRun executes fn at every leaf in parallel and collects the results
// by leaf index. It models the per-leaf compute stage of a phase (e.g.
// the cluster phase running GPGPU DBSCAN on every leaf).
func LeafRun[T any](net *Network, fn func(leaf int) (T, error)) ([]T, error) {
	results := make([]T, len(net.leaves))
	errs := make([]error, len(net.leaves))
	var wg sync.WaitGroup
	wg.Add(len(net.leaves))
	for i := range net.leaves {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mrnet: leaf %d: %w", i, err)
		}
	}
	return results, nil
}
