package mrnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
)

func sumHandlers(leafValue func(int) uint64) TCPHandlers {
	return TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], leafValue(leaf))
			return buf[:], nil
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) {
			var sum uint64
			for _, p := range in {
				sum += binary.LittleEndian.Uint64(p)
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], sum)
			return buf[:], nil
		},
	}
}

func TestTCPReduceSum(t *testing.T) {
	for _, leaves := range []int{1, 3, 16, 40} {
		net, err := NewTCP(leaves, 4, sumHandlers(func(l int) uint64 { return uint64(l) }))
		if err != nil {
			t.Fatal(err)
		}
		out, err := net.Reduce(nil)
		if err != nil {
			net.Close()
			t.Fatal(err)
		}
		got := binary.LittleEndian.Uint64(out)
		want := uint64(leaves * (leaves - 1) / 2)
		if got != want {
			t.Errorf("leaves=%d: sum = %d, want %d", leaves, got, want)
		}
		net.Close()
	}
}

func TestTCPDownstreamReachesEveryLeaf(t *testing.T) {
	const leaves = 24
	var delivered [leaves]atomic.Int64
	handlers := TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			if string(down) != "query-42" {
				return nil, fmt.Errorf("leaf %d received %q", leaf, down)
			}
			delivered[leaf].Add(1)
			return nil, nil
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) { return nil, nil },
	}
	net, err := NewTCP(leaves, 3, handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := net.Reduce([]byte("query-42")); err != nil {
		t.Fatal(err)
	}
	for l := range delivered {
		if delivered[l].Load() != 1 {
			t.Errorf("leaf %d received %d deliveries, want 1", l, delivered[l].Load())
		}
	}
}

func TestTCPMultipleOperations(t *testing.T) {
	var round atomic.Int64
	net, err := NewTCP(8, 4, sumHandlers(func(l int) uint64 {
		return uint64(l) * uint64(round.Load())
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	for r := int64(1); r <= 5; r++ {
		round.Store(r)
		out, err := net.Reduce(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := binary.LittleEndian.Uint64(out)
		want := uint64(28 * r) // 0+1+...+7 = 28
		if got != want {
			t.Errorf("round %d: sum = %d, want %d", r, got, want)
		}
	}
}

func TestTCPLeafErrorPropagates(t *testing.T) {
	boom := errors.New("leaf 5 exploded")
	handlers := TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			if leaf == 5 {
				return nil, boom
			}
			return []byte{1}, nil
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) { return []byte{1}, nil },
	}
	net, err := NewTCP(16, 4, handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	_, err = net.Reduce(nil)
	if err == nil || !strings.Contains(err.Error(), "leaf 5 exploded") {
		t.Errorf("err = %v, want the leaf error text", err)
	}
}

func TestTCPLargePayloads(t *testing.T) {
	const chunk = 1 << 20 // 1 MiB per leaf
	handlers := TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			return bytes.Repeat([]byte{byte(leaf)}, chunk), nil
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) {
			var out []byte
			for _, p := range in {
				out = append(out, p...)
			}
			return out, nil
		},
	}
	net, err := NewTCP(6, 3, handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	out, err := net.Reduce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6*chunk {
		t.Fatalf("gathered %d bytes, want %d", len(out), 6*chunk)
	}
	// Every leaf's bytes present, in leaf order (filters preserve child
	// order).
	for l := 0; l < 6; l++ {
		seg := out[l*chunk : (l+1)*chunk]
		if seg[0] != byte(l) || seg[chunk-1] != byte(l) {
			t.Fatalf("segment %d carries wrong bytes", l)
		}
	}
}

// TestTCPHistogramReduction runs the partitioner's real payload type —
// Eps-cell histograms gob-encoded over the wire — through the TCP tree,
// as the distributed partitioner would on a physical cluster.
func TestTCPHistogramReduction(t *testing.T) {
	g := grid.New(0.1)
	encode := func(h *grid.Histogram) ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(h.Counts); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	decode := func(p []byte) (*grid.Histogram, error) {
		h := grid.NewHistogram()
		if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&h.Counts); err != nil {
			return nil, err
		}
		return h, nil
	}
	handlers := TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			h := grid.NewHistogram()
			// Each leaf contributes counts for its own cell and a shared one.
			h.Counts[grid.Coord{CX: int32(leaf), CY: 0}] = int64(leaf + 1)
			h.Counts[grid.Coord{CX: 100, CY: 100}] = 2
			return encode(h)
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) {
			sum := grid.NewHistogram()
			for _, p := range in {
				h, err := decode(p)
				if err != nil {
					return nil, err
				}
				sum.Add(h)
			}
			return encode(sum)
		},
	}
	const leaves = 10
	net, err := NewTCP(leaves, 4, handlers)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	out, err := net.Reduce(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[grid.Coord{CX: 100, CY: 100}] != 2*leaves {
		t.Errorf("shared cell = %d, want %d", h.Counts[grid.Coord{CX: 100, CY: 100}], 2*leaves)
	}
	for l := 0; l < leaves; l++ {
		if h.Counts[grid.Coord{CX: int32(l), CY: 0}] != int64(l+1) {
			t.Errorf("leaf %d cell = %d, want %d", l, h.Counts[grid.Coord{CX: int32(l), CY: 0}], l+1)
		}
	}
	_ = g
}

func TestTCPValidation(t *testing.T) {
	if _, err := NewTCP(4, 4, TCPHandlers{}); err == nil {
		t.Error("missing handlers must be rejected")
	}
	if _, err := NewTCP(0, 4, sumHandlers(func(int) uint64 { return 0 })); err == nil {
		t.Error("zero leaves must be rejected")
	}
}

func TestTCPCloseThenReduce(t *testing.T) {
	net, err := NewTCP(4, 4, sumHandlers(func(int) uint64 { return 1 }))
	if err != nil {
		t.Fatal(err)
	}
	net.Close()
	net.Close() // idempotent
	if _, err := net.Reduce(nil); err == nil {
		t.Error("Reduce on a closed overlay must fail")
	}
}

// TestTCPConnectionLossSurfacesError kills the overlay mid-operation:
// the in-flight Reduce must fail with an error rather than hang.
func TestTCPConnectionLossSurfacesError(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	handlers := TCPHandlers{
		Leaf: func(leaf int, down []byte) ([]byte, error) {
			if leaf == 0 {
				close(started)
				<-release
			}
			return []byte{1}, nil
		},
		Filter: func(_ *Node, in [][]byte) ([]byte, error) { return []byte{1}, nil },
	}
	net, err := NewTCP(8, 4, handlers)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := net.Reduce(nil)
		done <- err
	}()
	<-started
	net.Close()
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Error("Reduce over a torn-down overlay must fail")
		}
	case <-timeoutChan(t):
		t.Fatal("Reduce hung after overlay teardown")
	}
}

func timeoutChan(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}

func TestTCPTopologyMatchesInProcess(t *testing.T) {
	net, err := NewTCP(512, DefaultFanout, sumHandlers(func(int) uint64 { return 0 }))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.Tree().NumInternal() != 2 {
		t.Errorf("512 leaves over TCP: internal = %d, want 2 (Table 1)", net.Tree().NumInternal())
	}
}
