package checkpoint

import (
	"errors"
	"testing"

	"repro/internal/integrity"
	"repro/internal/lustre"
)

// saveWorkload performs two Saves (the second replaces the first) so
// crash points cover both the fresh-publish and replace paths.
func saveWorkload(st *Store) error {
	if err := st.Save("partition", testSnap(40)); err != nil {
		return err
	}
	return st.Save("cluster", testSnap(60))
}

// TestCrashPointSweepNeverCorrupts enumerates every crash point during
// a Save sequence and checks, for each: a phase whose Save returned
// (was acknowledged) before the crash verifies after recovery, and no
// phase is ever *silently* corrupt — Verify either succeeds or returns
// a typed error that forces re-execution.
func TestCrashPointSweepNeverCorrupts(t *testing.T) {
	probe := lustre.New(lustre.Titan(), nil)
	probe.EnableCrashSim(1)
	if err := saveWorkload(NewStore(LustreFS(probe), "run1")); err != nil {
		t.Fatal(err)
	}
	total := probe.OpCount()
	if total < 10 {
		t.Fatalf("save workload produced only %d ops", total)
	}
	for seed := int64(1); seed <= 5; seed++ {
		for k := int64(2); k <= total; k++ {
			fs := lustre.New(lustre.Titan(), nil)
			fs.EnableCrashSim(seed)
			fs.ArmCrash(k)
			st := NewStore(LustreFS(fs), "run1")
			var acked []string
			if err := st.Save("partition", testSnap(40)); err == nil {
				acked = append(acked, "partition")
				if err := st.Save("cluster", testSnap(60)); err == nil {
					acked = append(acked, "cluster")
				}
			}
			if !fs.Crashed() {
				t.Fatalf("seed %d k=%d: no crash fired", seed, k)
			}
			if _, err := fs.Recover(); err != nil {
				t.Fatal(err)
			}
			st2 := NewStore(LustreFS(fs), "run1") // restarted process
			for _, phase := range acked {
				if err := st2.Verify(phase); err != nil {
					t.Fatalf("seed %d k=%d: acknowledged phase %s lost after crash: %v", seed, k, phase, err)
				}
				var got snap
				if err := st2.Load(phase, &got); err != nil || len(got.Points) == 0 {
					t.Fatalf("seed %d k=%d: acknowledged phase %s unreadable: %v", seed, k, phase, err)
				}
			}
			// Unacked phases must be absent or loudly corrupt, never a
			// renamed-but-empty/torn snapshot that verifies.
			for _, phase := range []string{"partition", "cluster"} {
				if err := st2.Verify(phase); err != nil &&
					!errors.Is(err, ErrNoCheckpoint) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("seed %d k=%d: %s: untyped verify error %v", seed, k, phase, err)
				}
			}
		}
	}
}

// TestMissingFileSyncCaught is the renamed-but-empty regression: if the
// data fsync before the rename is dropped (a lying fsync), some crash
// must expose an acknowledged snapshot that no longer verifies — and
// the sweep above proves the honest protocol never does.
func TestMissingFileSyncCaught(t *testing.T) {
	testLyingSyncCaught(t, func(fs *lustre.FS) {
		fs.SetSyncFilter(func(kind lustre.OpKind, name string) bool {
			return kind != lustre.OpSync // drop every file fsync, keep dir syncs
		})
	})
}

// TestMissingDirSyncCaught is the missing-dir-sync regression: without
// the directory sync after the rename, an acknowledged snapshot's
// rename can vanish in a crash.
func TestMissingDirSyncCaught(t *testing.T) {
	testLyingSyncCaught(t, func(fs *lustre.FS) {
		fs.SetSyncFilter(func(kind lustre.OpKind, name string) bool {
			return kind != lustre.OpSyncDir // drop every dir sync, keep file fsyncs
		})
	})
}

func testLyingSyncCaught(t *testing.T, mutate func(*lustre.FS)) {
	t.Helper()
	for seed := int64(1); seed <= 30; seed++ {
		fs := lustre.New(lustre.Titan(), nil)
		fs.EnableCrashSim(seed)
		mutate(fs)
		st := NewStore(LustreFS(fs), "run1")
		if err := saveWorkload(st); err != nil {
			t.Fatal(err)
		}
		fs.CrashNow()
		if _, err := fs.Recover(); err != nil {
			t.Fatal(err)
		}
		st2 := NewStore(LustreFS(fs), "run1")
		for _, phase := range []string{"partition", "cluster"} {
			if err := st2.Verify(phase); err != nil {
				return // the dropped sync lost an acknowledged snapshot — caught
			}
		}
	}
	t.Fatal("no seed in 1..30 exposed the dropped sync — the protocol test has no teeth")
}

// TestTornTailTyped: a snapshot cut short reports both ErrCorrupt and
// integrity.ErrTorn, so readers can distinguish a torn tail (expected
// after a crash, re-execute the phase) from interior bit rot.
func TestTornTailTyped(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	if err := st.Save("merge", testSnap(50)); err != nil {
		t.Fatal(err)
	}
	name := phaseFile("merge")
	h, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, h.Size())
	if _, err := h.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, len(magic) + 5, len(data) - 7} {
		trunc := fs.Create(name)
		if cut > 0 {
			if _, err := trunc.WriteAt(data[:cut], 0); err != nil {
				t.Fatal(err)
			}
		}
		err := st.Verify("merge")
		if !errors.Is(err, ErrCorrupt) || !errors.Is(err, integrity.ErrTorn) {
			t.Fatalf("cut at %d: Verify = %v, want ErrCorrupt and integrity.ErrTorn", cut, err)
		}
	}
}
