package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/geom"
	"repro/internal/lustre"
)

type snap struct {
	Phase  string
	Points []geom.Point
	Labels []int32
}

func testSnap(n int) *snap {
	s := &snap{Phase: "cluster"}
	for i := 0; i < n; i++ {
		s.Points = append(s.Points, geom.Point{ID: uint64(i), X: float64(i), Y: float64(-i)})
		s.Labels = append(s.Labels, int32(i%7))
	}
	return s
}

func newLustreStore(t *testing.T, runID string) (*lustre.FS, *Store) {
	t.Helper()
	fs := lustre.New(lustre.Titan(), nil)
	return fs, NewStore(LustreFS(fs), runID)
}

func TestRoundTrip(t *testing.T) {
	_, st := newLustreStore(t, "run1")
	want := testSnap(100)
	if err := st.Save("cluster", want); err != nil {
		t.Fatal(err)
	}
	var got snap
	if err := st.Load("cluster", &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 100 || got.Points[42] != want.Points[42] || got.Labels[99] != want.Labels[99] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if c := st.Completed(); len(c) != 1 || c[0] != "cluster" {
		t.Fatalf("Completed = %v", c)
	}
	if !st.Has("cluster") || st.Has("merge") {
		t.Fatal("Has is wrong")
	}
}

func TestLoadMissing(t *testing.T) {
	_, st := newLustreStore(t, "run1")
	var got snap
	if err := st.Load("nope", &got); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load(missing) = %v, want ErrNoCheckpoint", err)
	}
}

// TestBitFlipDetected corrupts one byte of a published snapshot on the
// simulated FS and checks Load reports ErrCorrupt — the acceptance
// criterion's "corrupted checkpoint is detected via checksum".
func TestBitFlipDetected(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	if err := st.Save("merge", testSnap(50)); err != nil {
		t.Fatal(err)
	}
	name := phaseFile("merge")
	size, err := fs.Size(name)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the payload region (past the header) of every
	// position in turn would be slow; hit a handful spread over the file.
	for _, off := range []int64{20, size / 2, size - 1} {
		fs2, st2 := newLustreStore(t, "run1")
		if err := st2.Save("merge", testSnap(50)); err != nil {
			t.Fatal(err)
		}
		h, err := fs2.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		if _, err := h.ReadAt(b, off); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		if _, err := h.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
		var got snap
		if err := st2.Load("merge", &got); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: Load = %v, want ErrCorrupt", off, err)
		}
		if err := st2.Verify("merge"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: Verify = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestTruncationDetected chops the snapshot short — a torn write that
// somehow bypassed the rename protocol must still be caught.
func TestTruncationDetected(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	if err := st.Save("partition", testSnap(50)); err != nil {
		t.Fatal(err)
	}
	name := phaseFile("partition")
	h, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, h.Size())
	if _, err := h.ReadAt(data, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	trunc := fs.Create(name) // Create truncates
	if _, err := trunc.WriteAt(data[:len(data)/2], 0); err != nil {
		t.Fatal(err)
	}
	var got snap
	if err := st.Load("partition", &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(truncated) = %v, want ErrCorrupt", err)
	}
}

// TestTornWriteLeavesOldState simulates a crash mid-save: the tmp file
// holds garbage but the published snapshot and manifest are intact, so
// loads still see the previous state.
func TestTornWriteLeavesOldState(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	want := testSnap(10)
	if err := st.Save("cluster", want); err != nil {
		t.Fatal(err)
	}
	// A later save dies mid-write: only the tmp name has the new bytes.
	tmp := fs.Create(phaseFile("cluster") + ".tmp")
	if _, err := tmp.WriteAt([]byte("partial garbage"), 0); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(LustreFS(fs), "run1") // fresh store, same FS (restart)
	var got snap
	if err := st2.Load("cluster", &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 10 {
		t.Fatalf("restored %d points, want 10", len(got.Points))
	}
}

func TestValidPrefix(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	phases := []string{"partition", "cluster", "merge"}
	if got := st.ValidPrefix(phases); got != 0 {
		t.Fatalf("empty store prefix = %d, want 0", got)
	}
	for _, ph := range phases {
		if err := st.Save(ph, testSnap(5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.ValidPrefix(phases); got != 3 {
		t.Fatalf("full prefix = %d, want 3", got)
	}
	// Corrupt the middle phase: prefix stops before it even though the
	// later snapshot is intact (strict prefix semantics).
	h, err := fs.Open(phaseFile("cluster"))
	if err != nil {
		t.Fatal(err)
	}
	b := []byte{0xFF}
	if _, err := h.WriteAt(b, h.Size()-1); err != nil {
		t.Fatal(err)
	}
	if got := st.ValidPrefix(phases); got != 1 {
		t.Fatalf("prefix with corrupt middle = %d, want 1", got)
	}
}

func TestRunIDMismatchIgnoresManifest(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	if err := st.Save("partition", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	other := NewStore(LustreFS(fs), "run2-different-config")
	if got := other.Completed(); len(got) != 0 {
		t.Fatalf("different RunID sees phases %v, want none", got)
	}
	var s snap
	if err := other.Load("partition", &s); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load under wrong RunID = %v, want ErrNoCheckpoint", err)
	}
	// Saving under the new RunID replaces the manifest; the old RunID's
	// view is gone after that.
	if err := other.Save("partition", testSnap(6)); err != nil {
		t.Fatal(err)
	}
	again := NewStore(LustreFS(fs), "run2-different-config")
	if err := again.Load("partition", &s); err != nil || len(s.Points) != 6 {
		t.Fatalf("new RunID state not visible: %v (%d points)", err, len(s.Points))
	}
}

func TestResaveReplacesEntry(t *testing.T) {
	_, st := newLustreStore(t, "run1")
	if err := st.Save("cluster", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("cluster", testSnap(9)); err != nil {
		t.Fatal(err)
	}
	var got snap
	if err := st.Load("cluster", &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 9 {
		t.Fatalf("resave kept %d points, want 9", len(got.Points))
	}
	if c := st.Completed(); len(c) != 1 {
		t.Fatalf("resave duplicated manifest entries: %v", c)
	}
}

func TestClear(t *testing.T) {
	fs, st := newLustreStore(t, "run1")
	if err := st.Save("partition", testSnap(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Clear(); err != nil {
		t.Fatal(err)
	}
	if c := st.Completed(); len(c) != 0 {
		t.Fatalf("Clear left phases %v", c)
	}
	for _, name := range fs.List() {
		if IsCheckpointFile(name) {
			t.Fatalf("Clear left %s on the FS", name)
		}
	}
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	bk, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(bk, "run1")
	if err := st.Save("cluster-0007", testSnap(20)); err != nil {
		t.Fatal(err)
	}
	// A different Store over the same directory (a restarted process)
	// sees the snapshot.
	bk2, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(bk2, "run1")
	var got snap
	if err := st2.Load("cluster-0007", &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 20 {
		t.Fatalf("restored %d points across restart, want 20", len(got.Points))
	}
	if err := st2.Clear(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSaves exercises the store from many goroutines (the
// distributed coordinator saves per-partition snapshots concurrently).
func TestConcurrentSaves(t *testing.T) {
	_, st := newLustreStore(t, "run1")
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			done <- st.Save(fmt.Sprintf("cluster-%04d", i), testSnap(i+1))
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if c := st.Completed(); len(c) != 16 {
		t.Fatalf("%d phases recorded, want 16: %v", len(c), c)
	}
	for i := 0; i < 16; i++ {
		var got snap
		ph := fmt.Sprintf("cluster-%04d", i)
		if err := st.Load(ph, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Points) != i+1 {
			t.Fatalf("%s: %d points, want %d", ph, len(got.Points), i+1)
		}
	}
}

// BenchmarkCheckpointRoundTrip measures the save+load cost of a
// cluster-phase-sized snapshot (per-leaf points and labels), the
// dominant checkpoint in the pipeline.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("points=%d", n), func(b *testing.B) {
			fs := lustre.New(lustre.Titan(), nil)
			st := NewStore(LustreFS(fs), "bench")
			payload := testSnap(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Save("cluster", payload); err != nil {
					b.Fatal(err)
				}
				var got snap
				if err := st.Load("cluster", &got); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(n) * 28) // approx. encoded record size
		})
	}
}
