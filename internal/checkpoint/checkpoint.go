// Package checkpoint provides durable, verifiable phase snapshots for
// the Mr. Scan pipeline.
//
// The paper's largest run held 8,192 nodes for 17.3 minutes; at that
// scale a mid-run process death without durable state forfeits the whole
// job. The pipeline's phase-barrier structure (partition → cluster →
// merge → sweep) makes phase boundaries the natural durable points: each
// completed phase's output is written to the (simulated) parallel file
// system as a snapshot, and a restarted run replays the longest valid
// prefix of snapshots instead of recomputing it.
//
// Durability protocol, defended against the two classic failure modes:
//
//   - Torn writes (crash mid-snapshot): every snapshot is first written
//     to a ".tmp" name, fsynced, and then atomically renamed into place,
//     with the directory synced after the rename; the manifest — itself
//     written with the same protocol — is updated only after the
//     snapshot rename. The sync ordering matters as much as the rename:
//     without the file sync a power failure can expose the *renamed*
//     name with empty or torn contents (rename is atomic but the data
//     was still in the page cache), and without the directory sync the
//     rename itself may not survive. A crash at any instant therefore
//     leaves either the old manifest (pointing at old, intact
//     snapshots) or the new one (pointing at the new, fully-written,
//     durable snapshot). Invariant: when Save returns, the snapshot and
//     the manifest entry recording it are both on stable storage.
//   - Silent corruption (bit rot, partial RAID reconstruction): every
//     snapshot carries a CRC32C (Castagnoli) checksum over its payload
//     plus a magic/version header; Load verifies both and returns
//     ErrCorrupt on any mismatch, so a damaged checkpoint re-executes
//     its phase rather than poisoning the output.
//
// The package is storage-agnostic: it talks to an FS interface
// implemented by the simulated Lustre file system (LustreFS) and by a
// real OS directory (DirFS, used by the distributed CLI whose
// coordinator outlives process restarts).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/integrity"
	"repro/internal/lustre"
	"repro/internal/telemetry"
)

// Format constants. Version bumps invalidate old snapshots wholesale: a
// resumed run treats a version mismatch like corruption and recomputes.
const (
	magic   = "MRCKPT"
	version = 1
)

// ErrCorrupt reports a snapshot that failed verification: bad magic,
// unknown version, truncated payload, or checksum mismatch.
var ErrCorrupt = errors.New("checkpoint: snapshot corrupt")

// ErrNoCheckpoint reports a phase with no snapshot on the store.
var ErrNoCheckpoint = errors.New("checkpoint: no snapshot")

// File is the handle surface snapshots are read and written through.
// Sync flushes written bytes to stable storage (fsync).
type File interface {
	io.Reader
	io.Writer
	Sync() error
}

// FS is the storage surface the store needs: named files with POSIX
// rename semantics plus a directory sync to make renames durable.
// Implemented by LustreFS (the simulated parallel file system) and
// DirFS (a real OS directory).
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir makes completed renames durable (fsync of the store's
	// directory). Stores are flat, so one directory suffices.
	SyncDir() error
}

// lustreFS adapts *lustre.FS to the FS interface.
type lustreFS struct{ fs *lustre.FS }

// LustreFS wraps the simulated parallel file system as a checkpoint
// store backend. Snapshot I/O is charged to the simulated clock like any
// other file traffic, so checkpoint overhead shows up in the evaluation.
func LustreFS(fs *lustre.FS) FS { return lustreFS{fs} }

func (l lustreFS) Create(name string) (File, error) { return l.fs.Create(name), nil }
func (l lustreFS) Open(name string) (File, error)   { return l.fs.Open(name) }
func (l lustreFS) Rename(o, n string) error         { return l.fs.Rename(o, n) }
func (l lustreFS) Remove(name string) error         { l.fs.Remove(name); return nil }
func (l lustreFS) SyncDir() error                   { return l.fs.SyncDir(".") }

// dirFS implements FS on a real OS directory, for checkpoint state that
// must survive process restarts (the distributed coordinator).
type dirFS struct{ dir string }

// DirFS returns a checkpoint backend rooted at an OS directory, created
// if missing.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	return dirFS{dir}, nil
}

func (d dirFS) path(name string) string {
	// Snapshot names are flat ("<phase>.ckpt"); keep them inside dir.
	return filepath.Join(d.dir, filepath.Base(name))
}

func (d dirFS) Create(name string) (File, error) { return os.Create(d.path(name)) }

func (d dirFS) Open(name string) (File, error) {
	f, err := os.Open(d.path(name))
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (d dirFS) Rename(o, n string) error { return os.Rename(d.path(o), d.path(n)) }

func (d dirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

func (d dirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Manifest is the run's durable table of contents: which phases have
// completed, in order, and the checksum each snapshot must verify
// against. The RunID fingerprints the configuration and input; a
// mismatched RunID means the checkpoints belong to a different run and
// are ignored wholesale.
type Manifest struct {
	Version int
	RunID   string
	Entries []Entry
}

// Entry records one completed phase.
type Entry struct {
	// Phase is the pipeline phase name ("partition", "cluster", ...).
	Phase string
	// File is the snapshot's name on the store.
	File string
	// CRC is the payload's CRC32C, duplicated from the snapshot header
	// so a swapped-in stale snapshot (right format, wrong contents) is
	// also detected.
	CRC uint32
	// Bytes is the payload length.
	Bytes int64
}

// Store reads and writes one run's snapshots. Safe for concurrent use
// (the distributed coordinator saves per-partition snapshots from many
// worker goroutines).
type Store struct {
	fs    FS
	runID string

	mu       sync.Mutex
	manifest Manifest
	loaded   bool
	// hub and parent record save/restore spans when installed via
	// SetTelemetry; a nil hub is inert (telemetry methods are nil-safe).
	hub    *telemetry.Hub
	parent *telemetry.Span
}

// manifestName is the manifest's file name on the store.
const manifestName = "MANIFEST.ckpt"

// NewStore opens (or initializes) a checkpoint store. runID fingerprints
// the run configuration: if the store holds a manifest for a different
// RunID, its snapshots are ignored and the next Save starts a fresh
// manifest.
func NewStore(fs FS, runID string) *Store {
	return &Store{fs: fs, runID: runID}
}

// SetTelemetry installs the hub save/restore spans and counters are
// recorded on. A nil hub (the default) disables recording.
func (s *Store) SetTelemetry(h *telemetry.Hub) {
	s.mu.Lock()
	s.hub = h
	s.mu.Unlock()
}

// SetTraceParent nests the store's spans under s — usually the phase
// span whose output is being snapshotted. Pass nil to detach.
func (s *Store) SetTraceParent(sp *telemetry.Span) {
	s.mu.Lock()
	s.parent = sp
	s.mu.Unlock()
}

func (s *Store) telemetry() (*telemetry.Hub, *telemetry.Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hub, s.parent
}

// ensureManifest loads the on-store manifest once, discarding it on
// RunID mismatch or corruption. Callers hold s.mu.
func (s *Store) ensureManifest() {
	if s.loaded {
		return
	}
	s.loaded = true
	s.manifest = Manifest{Version: version, RunID: s.runID}
	var m Manifest
	if err := s.loadFile(manifestName, &m); err != nil {
		return // missing or corrupt: start fresh
	}
	if m.Version != version || m.RunID != s.runID {
		return // different run or format: ignore
	}
	s.manifest = m
}

// Save snapshots one phase's payload (gob-encoded) and records it in the
// manifest. Phases saved twice keep the latest snapshot. The snapshot is
// durable before the manifest references it (write-then-rename, snapshot
// first), so a crash between the two leaves a consistent store.
func (s *Store) Save(phase string, payload any) error {
	hub, parent := s.telemetry()
	sp := hub.Start(parent, "checkpoint.save", telemetry.String("phase", phase))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		sp.End()
		return fmt.Errorf("checkpoint: encoding %s: %w", phase, err)
	}
	sp.Annotate(telemetry.Int("bytes", buf.Len()))
	name := phaseFile(phase)
	crc, err := s.writeFile(name, buf.Bytes())
	if err != nil {
		sp.End()
		return err
	}
	hub.Counter("checkpoint_saves_total", "phase", phase).Inc()
	hub.Counter("checkpoint_bytes_total", "phase", phase).Add(int64(buf.Len()))
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureManifest()
	entry := Entry{Phase: phase, File: name, CRC: crc, Bytes: int64(buf.Len())}
	replaced := false
	for i, e := range s.manifest.Entries {
		if e.Phase == phase {
			s.manifest.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		s.manifest.Entries = append(s.manifest.Entries, entry)
	}
	return s.saveManifestLocked()
}

// saveManifestLocked durably rewrites the manifest. Callers hold s.mu.
func (s *Store) saveManifestLocked() error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s.manifest); err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	_, err := s.writeFile(manifestName, buf.Bytes())
	return err
}

// writeFile writes payload under the integrity envelope via the atomic
// write-then-rename protocol and returns the payload CRC. Sync
// ordering: the tmp file's bytes are fsynced *before* the rename (so
// the published name can never surface empty or torn after a crash)
// and the directory is fsynced *after* (so the rename itself is
// durable when writeFile returns).
func (s *Store) writeFile(name string, payload []byte) (uint32, error) {
	crc := integrity.Checksum(payload)
	tmp := name + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: creating %s: %w", tmp, err)
	}
	var hdr [len(magic) + 2 + 4 + 8]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint16(hdr[len(magic):], version)
	binary.LittleEndian.PutUint32(hdr[len(magic)+2:], crc)
	binary.LittleEndian.PutUint64(hdr[len(magic)+6:], uint64(len(payload)))
	if _, err := f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if _, err := f.Write(payload); err != nil {
		return 0, fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("checkpoint: syncing %s: %w", tmp, err)
	}
	if c, ok := f.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return 0, fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
		}
	}
	if err := s.fs.Rename(tmp, name); err != nil {
		return 0, fmt.Errorf("checkpoint: publishing %s: %w", name, err)
	}
	if err := s.fs.SyncDir(); err != nil {
		return 0, fmt.Errorf("checkpoint: syncing store directory after publishing %s: %w", name, err)
	}
	return crc, nil
}

// loadFile reads and verifies an envelope, gob-decoding the payload into
// out. Missing files return ErrNoCheckpoint; damaged ones ErrCorrupt.
func (s *Store) loadFile(name string, out any) error {
	f, err := s.fs.Open(name)
	if err != nil {
		return fmt.Errorf("%w: %s (%v)", ErrNoCheckpoint, name, err)
	}
	defer func() {
		if c, ok := f.(io.Closer); ok {
			c.Close()
		}
	}()
	payload, err := verifyEnvelope(f, name)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: undecodable payload: %v", ErrCorrupt, name, err)
	}
	return nil
}

// verifyEnvelope checks magic, version, length and CRC, returning the
// verified payload bytes.
func verifyEnvelope(f io.Reader, name string) ([]byte, error) {
	var hdr [len(magic) + 2 + 4 + 8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %s: short header: %w", ErrCorrupt, name, integrity.ErrTorn)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, name)
	}
	if v := binary.LittleEndian.Uint16(hdr[len(magic):]); v != version {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrCorrupt, name, v, version)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[len(magic)+2:])
	length := binary.LittleEndian.Uint64(hdr[len(magic)+6:])
	const maxSnapshot = 1 << 32
	if length > maxSnapshot {
		return nil, fmt.Errorf("%w: %s: implausible length %d", ErrCorrupt, name, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("%w: %s: truncated payload: %w", ErrCorrupt, name, integrity.ErrTorn)
	}
	if got := integrity.Checksum(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: %s: CRC32C %08x, want %08x", ErrCorrupt, name, got, wantCRC)
	}
	return payload, nil
}

// verifiedPayload locates the phase in the manifest and returns its
// snapshot payload after full verification: envelope checksum AND the
// manifest's recorded CRC, so both bit rot and a stale snapshot under
// the right name are caught.
func (s *Store) verifiedPayload(phase string) ([]byte, error) {
	s.mu.Lock()
	s.ensureManifest()
	var entry *Entry
	for i := range s.manifest.Entries {
		if s.manifest.Entries[i].Phase == phase {
			entry = &s.manifest.Entries[i]
			break
		}
	}
	s.mu.Unlock()
	if entry == nil {
		return nil, fmt.Errorf("%w: phase %s not in manifest", ErrNoCheckpoint, phase)
	}
	f, err := s.fs.Open(entry.File)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrNoCheckpoint, entry.File, err)
	}
	defer func() {
		if c, ok := f.(io.Closer); ok {
			c.Close()
		}
	}()
	payload, err := verifyEnvelope(f, entry.File)
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) != entry.Bytes || integrity.Checksum(payload) != entry.CRC {
		return nil, fmt.Errorf("%w: %s: snapshot does not match manifest", ErrCorrupt, entry.File)
	}
	return payload, nil
}

// Load restores one phase's payload into out (a pointer to the type
// passed to Save), verifying it first — see verifiedPayload.
func (s *Store) Load(phase string, out any) error {
	hub, parent := s.telemetry()
	sp := hub.Start(parent, "checkpoint.restore", telemetry.String("phase", phase))
	defer sp.End()
	payload, err := s.verifiedPayload(phase)
	if err != nil {
		return err
	}
	sp.Annotate(telemetry.Int("bytes", len(payload)))
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s: undecodable payload: %v", ErrCorrupt, phaseFile(phase), err)
	}
	hub.Counter("checkpoint_restores_total", "phase", phase).Inc()
	return nil
}

// Verify checks one phase's snapshot without decoding it.
func (s *Store) Verify(phase string) error {
	_, err := s.verifiedPayload(phase)
	return err
}

// Completed returns the phases recorded in the manifest, in completion
// order. Entries are not verified — use Load (or ValidPrefix) to check
// the snapshots themselves.
func (s *Store) Completed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureManifest()
	out := make([]string, len(s.manifest.Entries))
	for i, e := range s.manifest.Entries {
		out[i] = e.Phase
	}
	return out
}

// Has reports whether the manifest records the phase (without verifying
// the snapshot).
func (s *Store) Has(phase string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureManifest()
	for _, e := range s.manifest.Entries {
		if e.Phase == phase {
			return true
		}
	}
	return false
}

// ValidPrefix walks phases in the given order, verifying each snapshot,
// and returns how many lead phases are restorable: the walk stops at the
// first phase that is missing from the manifest or fails verification.
// This is the resume rule — a corrupt checkpoint re-executes its phase
// and everything after it, falling back to the previous durable state.
func (s *Store) ValidPrefix(phases []string) int {
	for i, phase := range phases {
		if err := s.Verify(phase); err != nil {
			return i
		}
	}
	return len(phases)
}

// Clear removes every snapshot and the manifest — used when a resume
// finds checkpoints from a different run configuration.
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureManifest()
	for _, e := range s.manifest.Entries {
		if err := s.fs.Remove(e.File); err != nil {
			return fmt.Errorf("checkpoint: clearing %s: %w", e.File, err)
		}
	}
	if err := s.fs.Remove(manifestName); err != nil {
		return fmt.Errorf("checkpoint: clearing manifest: %w", err)
	}
	s.manifest = Manifest{Version: version, RunID: s.runID}
	return nil
}

// phaseFile maps a phase name to its snapshot file name.
func phaseFile(phase string) string {
	// Phase names are pipeline-internal identifiers; keep file names flat
	// and predictable for the CLI's stage-in/stage-out.
	return "ckpt-" + strings.ReplaceAll(phase, "/", "_") + ".ckpt"
}

// IsCheckpointFile reports whether a file name on the store belongs to
// the checkpoint subsystem (snapshots, manifest, or in-flight temps) —
// the CLI uses it to stage checkpoint state in and out of the simulated
// file system across process restarts.
func IsCheckpointFile(name string) bool {
	return strings.HasSuffix(name, ".ckpt") || strings.HasSuffix(name, ".ckpt.tmp")
}
