// Quickstart: cluster a small geospatial dataset with Mr. Scan and
// compare the output against sequential DBSCAN.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mrscan "repro"
)

func main() {
	// 1. Generate 50k points from the Twitter-like world distribution.
	pts := mrscan.Twitter(50_000, 42)

	// 2. Run the full four-phase pipeline on 8 simulated GPGPU leaves
	//    with the paper's Twitter parameters (Eps = 0.1°, MinPts = 40).
	cfg := mrscan.Default(0.1, 40, 8)
	res, labels, err := mrscan.RunPoints(pts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d points into %d clusters\n", len(pts), res.NumClusters)
	fmt.Printf("phases: partition=%v cluster=%v merge=%v sweep=%v (total %v)\n",
		res.Times.Partition, res.Times.Cluster, res.Times.Merge, res.Times.Sweep, res.Times.Total)
	fmt.Printf("dense box eliminated %d points in %d boxes\n",
		res.Stats.DenseBoxPoints, res.Stats.DenseBoxes)

	// 3. Sanity-check against the reference sequential DBSCAN with the
	//    paper's quality metric (Figure 11 holds >= 0.995).
	ref, err := mrscan.DBSCAN(pts, 0.1, 40)
	if err != nil {
		log.Fatal(err)
	}
	q, err := mrscan.Quality(ref, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality vs sequential DBSCAN: %.5f\n", q)

	noise := 0
	for _, l := range labels {
		if l < 0 {
			noise++
		}
	}
	fmt.Printf("noise points: %d (%.1f%%)\n", noise, 100*float64(noise)/float64(len(pts)))
}
