// Twitter: the paper's §4.1 workload — cluster geolocated-tweet-like data
// to find urban activity centers, reporting per-phase times and the
// largest clusters with their geographic centroids.
//
//	go run ./examples/twitter [-n 200000] [-leaves 16] [-minpts 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	mrscan "repro"
)

func main() {
	var (
		n      = flag.Int("n", 200_000, "number of points")
		leaves = flag.Int("leaves", 16, "cluster-phase leaves (simulated GPGPU nodes)")
		minPts = flag.Int("minpts", 40, "DBSCAN MinPts")
		eps    = flag.Float64("eps", 0.1, "DBSCAN Eps in degrees")
		seed   = flag.Int64("seed", 7, "dataset seed")
	)
	flag.Parse()

	fmt.Printf("generating %d tweet-like points (seed %d)...\n", *n, *seed)
	pts := mrscan.Twitter(*n, *seed)

	cfg := mrscan.Default(*eps, *minPts, *leaves)
	res, labels, err := mrscan.RunPoints(pts, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d clusters from %d points on %d leaves\n", res.NumClusters, len(pts), *leaves)
	fmt.Printf("phase breakdown: partition=%v cluster=%v (gpu %v) merge=%v sweep=%v\n",
		res.Times.Partition, res.Times.Cluster, res.Times.GPUDBSCAN, res.Times.Merge, res.Times.Sweep)
	fmt.Printf("simulated Titan hardware time: %v\n", res.Stats.SimNow)

	// Aggregate clusters: size and centroid (the weight field could carry
	// tweet counts for weighted analysis; here every weight is 1).
	type agg struct {
		n    int
		x, y float64
	}
	clusters := map[int]*agg{}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		a := clusters[l]
		if a == nil {
			a = &agg{}
			clusters[l] = a
		}
		a.n++
		a.x += pts[i].X
		a.y += pts[i].Y
	}
	ids := make([]int, 0, len(clusters))
	for id := range clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return clusters[ids[a]].n > clusters[ids[b]].n })
	fmt.Println("\nlargest activity centers (cluster, points, centroid lon/lat):")
	for i, id := range ids {
		if i >= 12 {
			break
		}
		a := clusters[id]
		fmt.Printf("  #%-4d %8d points at (%8.2f, %7.2f)\n", id, a.n, a.x/float64(a.n), a.y/float64(a.n))
	}
}
