// Treenet: using the MRNet-style overlay directly, outside the DBSCAN
// pipeline — the paper's broader claim is that "a tree-based distribution
// network of GPGPU-equipped nodes is useful for developing large-scale
// data analysis applications" (§6). This example builds a 3-level tree,
// multicasts a query region to 512 leaf processes, reduces a per-leaf
// spatial histogram through the internal filters, and prints the overlay
// traffic accounting.
//
//	go run ./examples/treenet
package main

import (
	"context"
	"fmt"
	"log"

	mrscan "repro"
	"repro/internal/grid"
	"repro/internal/mrnet"
)

func main() {
	const leaves = 512
	// The paper's topology policy: 256-way fanout, so 512 leaves get 2
	// intermediate processes (Table 1).
	net, err := mrnet.New(leaves, mrnet.DefaultFanout, mrnet.TitanCosts(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d leaves, %d internal processes, depth %d\n",
		net.NumLeaves(), net.NumInternal(), net.Depth())

	// Each leaf owns a shard of a dataset.
	g := grid.New(1.0)
	shards := make([][]mrscan.Point, leaves)
	for i := range shards {
		shards[i] = mrscan.Twitter(2_000, int64(i))
	}

	// Multicast a query region to every leaf.
	query := mrscan.Rect{MinX: -130, MinY: 20, MaxX: -60, MaxY: 55} // North America
	err = mrnet.Multicast(context.Background(), net, query, nil, func(leaf int, r mrscan.Rect) error {
		// Leaves filter their shard in place for the upcoming reduction.
		kept := shards[leaf][:0]
		for _, p := range shards[leaf] {
			if r.Contains(p) {
				kept = append(kept, p)
			}
		}
		shards[leaf] = kept
		return nil
	}, func(mrscan.Rect) int64 { return 32 })
	if err != nil {
		log.Fatal(err)
	}

	// Reduce per-leaf histograms of the filtered points up the tree; the
	// internal nodes run the sum filter, exactly like the partitioner's
	// histogram aggregation (§3.1.3).
	hist, err := mrnet.Reduce(context.Background(), net,
		func(leaf int) (*grid.Histogram, error) {
			return g.HistogramOf(shards[leaf]), nil
		},
		func(n *mrnet.Node, in []*grid.Histogram) (*grid.Histogram, error) {
			out := grid.NewHistogram()
			for _, h := range in {
				out.Add(h)
			}
			return out, nil
		},
		func(h *grid.Histogram) int64 { return int64(len(h.Counts)) * 12 },
	)
	if err != nil {
		log.Fatal(err)
	}

	cell, count := hist.MaxCell()
	fmt.Printf("query region holds %d points in %d one-degree cells\n",
		hist.Total(), len(hist.Counts))
	fmt.Printf("densest cell: %v with %d points (rect %+v)\n", cell, count, g.CellRect(cell))

	stats := net.Stats()
	fmt.Printf("overlay traffic: %d packets, %d bytes\n", stats.Packets, stats.Bytes)
	fmt.Printf("simulated network time: %v (startup %v)\n",
		net.Clock().Now(), net.Clock().Resource("mrnet/startup"))
}
