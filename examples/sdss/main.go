// SDSS: the paper's §4.2 workload — detect point-source objects in a
// Sloan-like sky frame (Eps = 0.00015, MinPts = 5) and report the object
// catalog statistics an automated survey pipeline would produce.
//
//	go run ./examples/sdss [-n 100000] [-leaves 8]
package main

import (
	"flag"
	"fmt"
	"log"

	mrscan "repro"
)

func main() {
	var (
		n      = flag.Int("n", 100_000, "number of detections")
		leaves = flag.Int("leaves", 8, "cluster-phase leaves")
		seed   = flag.Int64("seed", 3, "dataset seed")
	)
	flag.Parse()

	fmt.Printf("generating %d sky-survey detections...\n", *n)
	pts := mrscan.SDSS(*n, *seed)

	// The paper's SDSS parameters (§5.2).
	cfg := mrscan.Default(0.00015, 5, *leaves)
	res, labels, err := mrscan.RunPoints(pts, cfg)
	if err != nil {
		log.Fatal(err)
	}

	sizes := map[int]int{}
	noise := 0
	for _, l := range labels {
		if l < 0 {
			noise++
			continue
		}
		sizes[l]++
	}
	// Object size histogram: how many detections per cataloged object.
	hist := map[int]int{}
	maxSize := 0
	for _, s := range sizes {
		bucket := s
		if bucket > 20 {
			bucket = 21
		}
		hist[bucket]++
		if s > maxSize {
			maxSize = s
		}
	}
	fmt.Printf("\ncataloged %d objects from %d detections (%d background/noise)\n",
		res.NumClusters, len(pts), noise)
	fmt.Printf("largest object: %d detections\n", maxSize)
	fmt.Printf("phases: partition=%v cluster=%v merge=%v sweep=%v\n",
		res.Times.Partition, res.Times.Cluster, res.Times.Merge, res.Times.Sweep)
	fmt.Println("\nobject size histogram (detections -> objects):")
	for s := 5; s <= 21; s++ {
		if hist[s] == 0 {
			continue
		}
		label := fmt.Sprintf("%d", s)
		if s == 21 {
			label = ">20"
		}
		fmt.Printf("  %4s  %6d\n", label, hist[s])
	}
}
