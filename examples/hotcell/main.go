// Hotcell: the strong-scaling limit and its fix. The paper found that
// beyond 2,048 leaves "the slowest cluster process is executing a
// partition made up of a single dense grid cell. Since this partition
// cannot be subdivided further, we have again found a limit ... or we
// need to subdivide grid cells when they have extremely high density"
// (§5.1.2). This example builds a dataset dominated by one Eps cell and
// shows the slowest-leaf load with and without hot-cell subdivision
// (Config.HotCellThreshold).
//
//	go run ./examples/hotcell
package main

import (
	"fmt"
	"log"
	"math/rand"

	mrscan "repro"
)

func main() {
	// 80% of the data inside a single 0.1°×0.1° cell (one metro core),
	// the rest scattered.
	rng := rand.New(rand.NewSource(99))
	const n = 60_000
	pts := make([]mrscan.Point, n)
	for i := range pts {
		if i < n*8/10 {
			pts[i] = mrscan.Point{ID: uint64(i), X: rng.Float64() * 0.1, Y: rng.Float64() * 0.1, Weight: 1}
		} else {
			pts[i] = mrscan.Point{ID: uint64(i), X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3, Weight: 1}
		}
	}
	fmt.Printf("dataset: %d points, %d of them in one Eps cell\n\n", n, n*8/10)

	fmt.Printf("%-6s %-26s %-16s %-14s %-10s\n", "leaves", "mode", "max leaf points", "slowest GPU", "clusters")
	for _, leaves := range []int{4, 8, 16} {
		for _, mode := range []struct {
			name       string
			threshold  int64
			shadowReps bool
		}{
			{"whole cells", 0, false},
			{"split hot cells", 3000, false},
			{"split + shadow reps", 3000, true},
		} {
			cfg := mrscan.Default(0.1, 4, leaves)
			cfg.HotCellThreshold = mode.threshold
			cfg.ShadowReps = mode.shadowReps
			cfg.SequentialLeaves = true // time each simulated GPU in isolation
			res, _, err := mrscan.RunPoints(pts, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-26s %-16d %-14v %-10d\n",
				leaves, mode.name, res.Stats.MaxLeafPoints, res.Times.GPUDBSCAN, res.NumClusters)
		}
	}
	fmt.Println("\nwithout splitting, one leaf always owns the whole dense cell —")
	fmt.Println("adding leaves stops helping (the paper's 2,048-leaf plateau).")
	fmt.Println("HotCellThreshold shatters the cell into quadrant tiles, shrinking")
	fmt.Println("the owned load; adding ShadowReps also bounds each tile's shadow")
	fmt.Println("(8 representatives per region), so the slowest GPU keeps improving.")
}
