package mrscan

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// ClusterStat summarizes one cluster of a labeled output. The Weight
// field aggregates the optional per-point weight the input format carries
// ("an optional weight that can be used for analysis of the clustered
// output", §3) — e.g. tweet counts or detection fluxes.
type ClusterStat struct {
	// Cluster is the global cluster ID.
	Cluster int
	// Points is the number of member points.
	Points int
	// Weight is the sum of member weights.
	Weight float64
	// Centroid is the unweighted mean position of the members.
	Centroid Point
	// Bounds is the members' bounding rectangle.
	Bounds Rect
}

// String renders the stat for reports.
func (s ClusterStat) String() string {
	return fmt.Sprintf("cluster %d: %d points (weight %.6g) at (%.4f, %.4f)",
		s.Cluster, s.Points, s.Weight, s.Centroid.X, s.Centroid.Y)
}

// ClusterStats aggregates a labeled clustering into per-cluster
// statistics, sorted by descending point count (ties by cluster ID).
// labels must align with pts; negative labels (noise) are skipped.
func ClusterStats(pts []Point, labels []int) ([]ClusterStat, error) {
	if len(pts) != len(labels) {
		return nil, fmt.Errorf("mrscan: %d points with %d labels", len(pts), len(labels))
	}
	acc := map[int]*ClusterStat{}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		s := acc[l]
		if s == nil {
			s = &ClusterStat{Cluster: l, Bounds: geom.EmptyRect()}
			acc[l] = s
		}
		s.Points++
		s.Weight += pts[i].Weight
		s.Centroid.X += pts[i].X
		s.Centroid.Y += pts[i].Y
		s.Bounds = s.Bounds.Extend(pts[i])
	}
	out := make([]ClusterStat, 0, len(acc))
	for _, s := range acc {
		s.Centroid.X /= float64(s.Points)
		s.Centroid.Y /= float64(s.Points)
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Points != out[b].Points {
			return out[a].Points > out[b].Points
		}
		return out[a].Cluster < out[b].Cluster
	})
	return out, nil
}

// NoiseCount returns the number of noise-labeled points.
func NoiseCount(labels []int) int {
	n := 0
	for _, l := range labels {
		if l < 0 {
			n++
		}
	}
	return n
}
