package mrscan_test

import (
	"fmt"

	mrscan "repro"
)

// ExampleRunPoints clusters a small controlled dataset: three well
// separated Gaussian blobs plus scattered noise.
func ExampleRunPoints() {
	// Three tight blobs of 200 points each, far apart.
	var pts []mrscan.Point
	id := uint64(0)
	for _, c := range [][2]float64{{0, 0}, {10, 0}, {0, 10}} {
		for i := 0; i < 200; i++ {
			pts = append(pts, mrscan.Point{
				ID: id,
				X:  c[0] + float64(i%20)*0.004,
				Y:  c[1] + float64(i/20)*0.004,
			})
			id++
		}
	}
	res, labels, err := mrscan.RunPoints(pts, mrscan.Default(0.1, 4, 2))
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("noise:", mrscan.NoiseCount(labels))
	// Output:
	// clusters: 3
	// noise: 0
}

// ExampleDBSCAN runs the sequential reference implementation directly.
func ExampleDBSCAN() {
	pts := []mrscan.Point{
		{ID: 0, X: 0.00, Y: 0}, {ID: 1, X: 0.05, Y: 0}, {ID: 2, X: 0.10, Y: 0},
		{ID: 3, X: 5, Y: 5}, // isolated
	}
	labels, err := mrscan.DBSCAN(pts, 0.1, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(labels)
	// Output:
	// [0 0 0 -1]
}

// ExampleQuality scores a clustering against a reference with the
// paper's §5.1.3 metric.
func ExampleQuality() {
	ref := []int{0, 0, 1, 1, -1}
	got := []int{7, 7, 3, 3, -1} // same partition, renamed IDs
	q, err := mrscan.Quality(ref, got)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", q)
	// Output:
	// 1.00
}

// ExampleClusterStats aggregates a labeled output.
func ExampleClusterStats() {
	pts := []mrscan.Point{
		{ID: 0, X: 1, Y: 1, Weight: 2},
		{ID: 1, X: 3, Y: 3, Weight: 4},
		{ID: 2, X: 9, Y: 9, Weight: 1},
	}
	stats, err := mrscan.ClusterStats(pts, []int{0, 0, -1})
	if err != nil {
		panic(err)
	}
	fmt.Println(stats[0])
	// Output:
	// cluster 0: 2 points (weight 6) at (2.0000, 2.0000)
}
